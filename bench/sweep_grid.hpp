// The declarative sweep grid shared by maia_sweep, maia_serve's clients,
// and maia_client: every NPB Class-C kernel x thread count x execution
// mode x message size, three queries per scenario (an execution-time
// prediction, a collective cost, and a load-latency walk).
//
// Factored out of sweep_main.cpp so the streaming client can replay the
// exact same grid (or a slice of it) over the wire and compare responses
// byte-for-byte against a local serial evaluation — same queries, same
// order, same canonical keys.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "npb/signatures.hpp"
#include "svc/query.hpp"

namespace maia::sweepgrid {

/// Execution modes of the sweep: where the kernel runs and which software
/// stack serves its communication (the paper's native/symmetric axes).
enum class Mode { kHostNative = 0, kPhiPost, kPhiPre, kSymmetric };
inline constexpr int kModeCount = 4;
inline constexpr int kMaxThreads = 240;

inline arch::DeviceId mode_device(Mode m) {
  return m == Mode::kHostNative ? arch::DeviceId::kHost : arch::DeviceId::kPhi0;
}

inline fabric::SoftwareStack mode_stack(Mode m) {
  return m == Mode::kPhiPre ? fabric::SoftwareStack::kPreUpdate
                            : fabric::SoftwareStack::kPostUpdate;
}

/// Geometric ladder of 44 message sizes from 16 B to ~4 MiB; strictly
/// increasing so every size is a distinct canonical key.
inline std::vector<sim::Bytes> message_sizes() {
  constexpr int kCount = 44;
  const double ratio = std::pow(4.0 * 1024.0 * 1024.0 / 16.0,
                                1.0 / static_cast<double>(kCount - 1));
  std::vector<sim::Bytes> sizes;
  sizes.reserve(kCount);
  double value = 16.0;
  sim::Bytes prev = 0;
  for (int i = 0; i < kCount; ++i) {
    auto s = static_cast<sim::Bytes>(value);
    if (s <= prev) s = prev + 1;
    sizes.push_back(s);
    prev = s;
    value *= ratio;
  }
  return sizes;
}

/// The collective each kernel exercises in the sweep (its dominant
/// communication pattern); symmetric mode always asks the cross-device
/// p2p question instead.
inline svc::CollectiveOp kernel_op(std::size_t kernel_index) {
  static constexpr svc::CollectiveOp kOps[] = {
      svc::CollectiveOp::kAllreduce,    // EP: final sum reduction
      svc::CollectiveOp::kSendrecvRing, // CG: halo exchange
      svc::CollectiveOp::kBcast,        // MG: coarse-grid broadcast
      svc::CollectiveOp::kAlltoall,     // FT: transpose
      svc::CollectiveOp::kAllgather,    // IS: key redistribution
      svc::CollectiveOp::kReduce,       // BT: residual reduction
      svc::CollectiveOp::kGather,       // SP: solution gather
      svc::CollectiveOp::kScatter,      // LU: block scatter
  };
  return kOps[kernel_index % (sizeof(kOps) / sizeof(kOps[0]))];
}

/// Pointer-chase working set probed alongside each kernel: a Fig-5-style
/// ladder from L1-resident to memory-resident, one rung per kernel, so the
/// sweep exercises every level transition of both hierarchies.
inline sim::Bytes kernel_working_set(std::size_t kernel_index) {
  return sim::Bytes{16 * 1024} << (kernel_index % 8);  // 16 KiB .. 2 MiB
}

struct Grid {
  std::vector<svc::Query> queries;
};

/// Build the sweep: kernels x threads x modes x message sizes, three
/// queries per scenario.  `thread_step` samples the 1..240 thread axis
/// (1 = full grid, >1 = smoke); `kernel_limit` > 0 restricts to the first
/// K kernels (the slice knob used by maia_client).
inline Grid build_grid(const std::vector<npb::NpbWorkload>& workloads,
                       int thread_step, std::size_t kernel_limit = 0) {
  Grid grid;
  const std::vector<sim::Bytes> sizes = message_sizes();
  const std::size_t kernels =
      kernel_limit > 0 && kernel_limit < workloads.size() ? kernel_limit
                                                          : workloads.size();
  std::size_t scenario_count = 0;
  for (int t = 1; t <= kMaxThreads; t += thread_step) ++scenario_count;
  grid.queries.reserve(kernels * scenario_count * kModeCount * sizes.size() * 3);
  for (std::size_t k = 0; k < kernels; ++k) {
    const auto kernel = static_cast<std::uint16_t>(k);
    const sim::Bytes ws = kernel_working_set(k);
    for (int t = 1; t <= kMaxThreads; t += thread_step) {
      for (int m = 0; m < kModeCount; ++m) {
        const Mode mode = static_cast<Mode>(m);
        const arch::DeviceId device = mode_device(mode);
        for (const sim::Bytes s : sizes) {
          svc::ExecQuery exec;
          exec.kernel = kernel;
          exec.device = device;
          exec.threads = static_cast<std::uint16_t>(t);
          grid.queries.push_back(svc::Query::of(exec));

          svc::CollectiveQuery coll;
          coll.op = mode == Mode::kSymmetric ? svc::CollectiveOp::kCrossP2P
                                             : kernel_op(k);
          coll.device = device;
          coll.ranks = static_cast<std::uint16_t>(t);
          coll.message_bytes = s;
          coll.stack = mode_stack(mode);
          grid.queries.push_back(svc::Query::of(coll));

          svc::LatencyQuery lat;
          lat.device = device;
          lat.working_set = ws;
          lat.iterations = 4;
          grid.queries.push_back(svc::Query::of(lat));
        }
      }
    }
  }
  return grid;
}

/// The standard engine setup every sweep binary shares: register the
/// eight NPB Class-C kernels in benchmark order, so kernel ids — and the
/// engine calibration hash — agree between server, client, and harness.
inline std::vector<npb::NpbWorkload> register_npb_kernels(
    svc::QueryEngine& engine) {
  std::vector<npb::NpbWorkload> workloads;
  for (const npb::Benchmark b : npb::all_benchmarks()) {
    workloads.push_back(npb::class_c_workload(b));
    engine.register_kernel(workloads.back().signature);
  }
  return workloads;
}

}  // namespace maia::sweepgrid
