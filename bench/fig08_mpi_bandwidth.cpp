// Regenerates the paper's fig08 mpi_bandwidth experiment; see DESIGN.md's
// per-experiment index.  --csv prints the raw series.
#include "figure_main.hpp"
MAIA_FIGURE_MAIN(fig08_mpi_bandwidth)
