// Regenerates the paper's fig18 offload_bw experiment; see DESIGN.md's
// per-experiment index.  --csv prints the raw series.
#include "figure_main.hpp"
MAIA_FIGURE_MAIN(fig18_offload_bw)
