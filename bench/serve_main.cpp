// maia_serve: the streaming prediction server.  Serves the svc::QueryEngine
// over a unix-domain or TCP socket (src/net protocol; --listen tcp:host:port
// puts a fleet on a network) to any client that can speak length-prefixed
// frames — including the dependency-free examples/client.py.
//
//   maia_serve --socket PATH [--workers N] [--eval-jobs N] [--queue-depth N]
//              [--cache N] [--shards N] [--shard I/N] [--snapshot-in P]
//              [--snapshot-out P] [--metrics PATH] [--drain-timeout-ms T]
//
// The server registers the eight NPB Class-C kernels (same ids as
// maia_sweep / maia_client), optionally warm-starts from a cache snapshot,
// then serves until SIGTERM/SIGINT.  On the signal it drains gracefully:
// stops accepting, answers DRAINING to new work, flushes every in-flight
// batch, saves --snapshot-out, writes --metrics, prints the final SLO
// counters, and exits 0.
#include <signal.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "arch/registry.hpp"
#include "net/server.hpp"
#include "obs/obs.hpp"
#include "sim/thread_pool.hpp"
#include "svc/engine.hpp"
#include "sweep_grid.hpp"

namespace {

maia::net::Server* g_server = nullptr;

void handle_signal(int) {
  // request_drain() is async-signal-safe: an atomic store + a pipe write.
  if (g_server != nullptr) g_server->request_drain();
}

void print_help(const char* argv0, std::FILE* out) {
  std::fprintf(
      out,
      "usage: %s --socket PATH [options]\n"
      "\n"
      "Serve the batch prediction engine over a unix-domain socket.\n"
      "SIGTERM/SIGINT drain gracefully: in-flight batches finish, the\n"
      "cache snapshot is saved, and the process exits 0.\n"
      "\n"
      "options:\n"
      "  --socket ADDR        listen endpoint: unix:/path, tcp:host:port,\n"
      "                       or a bare unix path (default: maia.sock);\n"
      "                       a stale leftover unix socket is probed and\n"
      "                       reclaimed, a live one refuses startup\n"
      "  --listen ADDR        alias for --socket\n"
      "  --workers N          evaluation worker threads (default: 2)\n"
      "  --eval-jobs N        share one N-thread pool for intra-batch\n"
      "                       parallelism (default: off, batches run\n"
      "                       serial inside their worker)\n"
      "  --queue-depth N      admission queue bound; a full queue answers\n"
      "                       RETRY_LATER (default: 64)\n"
      "  --coalesce N         continuous batching: stitch queued frames\n"
      "                       into mega-batches of up to N queries\n"
      "                       (default: 65536; 0 disables)\n"
      "  --coalesce-linger-us T  max-linger deadline topping up a\n"
      "                       below-target mega-batch (default: 200)\n"
      "  --no-coalesce        shorthand for --coalesce 0 (evaluate one\n"
      "                       frame per batch, the pre-coalescing path)\n"
      "  --cache N            LRU entries per engine shard (default: 32768)\n"
      "  --shards N           engine shard count (default: auto)\n"
      "  --shard I/N          serve only consistent-hash range I of N and\n"
      "                       answer WRONG_SHARD to any key outside it;\n"
      "                       the range is advertised in the stats\n"
      "                       handshake so a router can validate routing\n"
      "  --snapshot-in P      warm-start the caches from snapshot P\n"
      "  --snapshot-out P     save a snapshot at drain\n"
      "  --metrics PATH       write the metrics registry JSON at drain\n"
      "  --drain-timeout-ms T force-exit ceiling on drain (default: 30000)\n"
      "  --help               show this help\n",
      argv0);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace maia;

  net::ServerConfig server_config;
  server_config.socket_path = "maia.sock";
  server_config.workers = 2;
  svc::EngineConfig engine_config;
  int eval_jobs = 0;
  std::string snapshot_in;
  std::string metrics_path;

  for (int i = 1; i < argc; ++i) {
    auto need_value = [&](const char* flag) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "maia_serve: %s expects a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--socket") == 0) {
      server_config.socket_path = need_value("--socket");
    } else if (std::strcmp(argv[i], "--listen") == 0) {
      server_config.socket_path = need_value("--listen");
    } else if (std::strcmp(argv[i], "--workers") == 0) {
      server_config.workers = std::atoi(need_value("--workers"));
    } else if (std::strcmp(argv[i], "--eval-jobs") == 0) {
      eval_jobs = std::atoi(need_value("--eval-jobs"));
    } else if (std::strcmp(argv[i], "--queue-depth") == 0) {
      server_config.admission_depth =
          static_cast<std::size_t>(std::atol(need_value("--queue-depth")));
    } else if (std::strcmp(argv[i], "--coalesce") == 0) {
      server_config.coalesce_max_queries =
          static_cast<std::size_t>(std::atol(need_value("--coalesce")));
    } else if (std::strcmp(argv[i], "--coalesce-linger-us") == 0) {
      server_config.coalesce_linger_us = static_cast<std::uint32_t>(
          std::atol(need_value("--coalesce-linger-us")));
    } else if (std::strcmp(argv[i], "--no-coalesce") == 0) {
      server_config.coalesce_max_queries = 0;
    } else if (std::strcmp(argv[i], "--cache") == 0) {
      engine_config.cache_capacity_per_shard =
          static_cast<std::size_t>(std::atol(need_value("--cache")));
    } else if (std::strcmp(argv[i], "--shards") == 0) {
      engine_config.shards = std::atoi(need_value("--shards"));
    } else if (std::strcmp(argv[i], "--shard") == 0) {
      const char* spec = need_value("--shard");
      char* slash = nullptr;
      const long index = std::strtol(spec, &slash, 10);
      long count = 0;
      if (slash != nullptr && *slash == '/') {
        count = std::strtol(slash + 1, nullptr, 10);
      }
      if (count <= 0 || index < 0 || index >= count) {
        std::fprintf(stderr,
                     "maia_serve: --shard expects INDEX/COUNT with "
                     "0 <= INDEX < COUNT, got '%s'\n",
                     spec);
        return 2;
      }
      server_config.shard_index = static_cast<int>(index);
      server_config.shard_count = static_cast<int>(count);
    } else if (std::strcmp(argv[i], "--snapshot-in") == 0) {
      snapshot_in = need_value("--snapshot-in");
    } else if (std::strcmp(argv[i], "--snapshot-out") == 0) {
      server_config.snapshot_out = need_value("--snapshot-out");
    } else if (std::strcmp(argv[i], "--metrics") == 0) {
      metrics_path = need_value("--metrics");
    } else if (std::strcmp(argv[i], "--drain-timeout-ms") == 0) {
      server_config.drain_timeout_ms =
          static_cast<std::uint32_t>(std::atol(need_value("--drain-timeout-ms")));
    } else if (std::strcmp(argv[i], "--help") == 0 ||
               std::strcmp(argv[i], "-h") == 0) {
      print_help(argv[0], stdout);
      return 0;
    } else {
      print_help(argv[0], stderr);
      return 2;
    }
  }

  svc::QueryEngine engine(arch::maia_node(), engine_config);
  sweepgrid::register_npb_kernels(engine);

  if (!snapshot_in.empty()) {
    const svc::SnapshotLoadResult loaded = engine.load_snapshot(snapshot_in);
    if (loaded.ok()) {
      std::printf("maia_serve: warmed %llu records from %s\n",
                  static_cast<unsigned long long>(loaded.records_loaded),
                  snapshot_in.c_str());
    } else {
      std::printf("maia_serve: snapshot %s REJECTED (%s) — cold start\n",
                  snapshot_in.c_str(), svc::snapshot_error_name(loaded.error));
    }
  }

  std::unique_ptr<sim::ThreadPool> eval_pool;
  if (eval_jobs > 0) {
    eval_pool = std::make_unique<sim::ThreadPool>(eval_jobs);
    server_config.eval_pool = eval_pool.get();
  }

  server_config.log_accepts = true;
  net::Server server(engine, server_config);
  std::string error;
  if (!server.start(&error)) {
    std::fprintf(stderr, "maia_serve: %s\n", error.c_str());
    return 1;
  }
  std::printf("maia_serve: listening on %s (%d workers, queue depth %zu)\n",
              server_config.socket_path.c_str(), server_config.workers,
              server_config.admission_depth);
  if (server_config.coalesce_max_queries > 0) {
    std::printf("maia_serve: coalescing up to %zu queries, %u us linger\n",
                server_config.coalesce_max_queries,
                server_config.coalesce_linger_us);
  } else {
    std::printf("maia_serve: coalescing disabled\n");
  }
  if (server_config.shard_count > 0) {
    std::printf("maia_serve: serving shard %d/%d only\n",
                server_config.shard_index, server_config.shard_count);
  }
  std::fflush(stdout);

  g_server = &server;
  struct sigaction sa{};
  sa.sa_handler = handle_signal;
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);

  const int exit_code = server.wait();
  g_server = nullptr;

  const net::ServerStats stats = server.stats();
  const svc::EngineStats engine_stats = engine.stats();
  std::printf(
      "maia_serve: drained (%s)\n"
      "  requests: %llu served, %llu rejected (retry), %llu timed out, "
      "%llu malformed, %llu refused draining, %llu wrong shard\n"
      "  connections: %llu accepted, %llu closed\n"
      "  bytes: %llu in, %llu out\n"
      "  engine: %llu queries, %llu hits, %llu misses (%.1f%% hit rate)\n",
      exit_code == 0 ? "clean" : "forced",
      static_cast<unsigned long long>(stats.served),
      static_cast<unsigned long long>(stats.rejected),
      static_cast<unsigned long long>(stats.timed_out),
      static_cast<unsigned long long>(stats.malformed),
      static_cast<unsigned long long>(stats.draining_rejected),
      static_cast<unsigned long long>(stats.wrong_shard),
      static_cast<unsigned long long>(stats.connections_accepted),
      static_cast<unsigned long long>(stats.connections_closed),
      static_cast<unsigned long long>(stats.bytes_read),
      static_cast<unsigned long long>(stats.bytes_written),
      static_cast<unsigned long long>(engine_stats.queries),
      static_cast<unsigned long long>(engine_stats.cache_hits),
      static_cast<unsigned long long>(engine_stats.cache_misses),
      100.0 * engine_stats.hit_rate());
  std::printf(
      "  coalescing: %llu mega-batches stitched %llu frames; "
      "bufpool %llu allocs, %llu reuses\n",
      static_cast<unsigned long long>(stats.coalesced_batches),
      static_cast<unsigned long long>(stats.coalesced_frames),
      static_cast<unsigned long long>(stats.bufpool_allocations),
      static_cast<unsigned long long>(stats.bufpool_reuses));
  if (!server_config.snapshot_out.empty()) {
    std::printf("  snapshot: %llu records -> %s\n",
                static_cast<unsigned long long>(stats.snapshot_records),
                server_config.snapshot_out.c_str());
  }

  if (!metrics_path.empty()) {
    std::ofstream os(metrics_path);
    if (!os) {
      std::fprintf(stderr, "maia_serve: cannot write %s\n", metrics_path.c_str());
      return 1;
    }
    obs::write_metrics_json(os, obs::MetricsRegistry::global().snapshot());
    std::printf("  metrics: %s\n", metrics_path.c_str());
  }

  return exit_code;
}
