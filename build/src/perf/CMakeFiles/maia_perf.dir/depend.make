# Empty dependencies file for maia_perf.
# This may be replaced when dependencies are built.
