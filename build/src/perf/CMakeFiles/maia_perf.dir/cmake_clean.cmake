file(REMOVE_RECURSE
  "CMakeFiles/maia_perf.dir/exec_model.cpp.o"
  "CMakeFiles/maia_perf.dir/exec_model.cpp.o.d"
  "libmaia_perf.a"
  "libmaia_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maia_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
