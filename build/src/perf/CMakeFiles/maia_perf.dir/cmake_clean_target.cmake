file(REMOVE_RECURSE
  "libmaia_perf.a"
)
