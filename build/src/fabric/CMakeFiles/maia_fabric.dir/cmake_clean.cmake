file(REMOVE_RECURSE
  "CMakeFiles/maia_fabric.dir/mpi_fabric.cpp.o"
  "CMakeFiles/maia_fabric.dir/mpi_fabric.cpp.o.d"
  "CMakeFiles/maia_fabric.dir/offload_link.cpp.o"
  "CMakeFiles/maia_fabric.dir/offload_link.cpp.o.d"
  "libmaia_fabric.a"
  "libmaia_fabric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maia_fabric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
