file(REMOVE_RECURSE
  "libmaia_fabric.a"
)
