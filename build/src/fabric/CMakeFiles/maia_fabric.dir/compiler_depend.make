# Empty compiler generated dependencies file for maia_fabric.
# This may be replaced when dependencies are built.
