
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/npb/bt.cpp" "src/npb/CMakeFiles/maia_npb.dir/bt.cpp.o" "gcc" "src/npb/CMakeFiles/maia_npb.dir/bt.cpp.o.d"
  "/root/repo/src/npb/cfd_common.cpp" "src/npb/CMakeFiles/maia_npb.dir/cfd_common.cpp.o" "gcc" "src/npb/CMakeFiles/maia_npb.dir/cfd_common.cpp.o.d"
  "/root/repo/src/npb/cg.cpp" "src/npb/CMakeFiles/maia_npb.dir/cg.cpp.o" "gcc" "src/npb/CMakeFiles/maia_npb.dir/cg.cpp.o.d"
  "/root/repo/src/npb/common.cpp" "src/npb/CMakeFiles/maia_npb.dir/common.cpp.o" "gcc" "src/npb/CMakeFiles/maia_npb.dir/common.cpp.o.d"
  "/root/repo/src/npb/ep.cpp" "src/npb/CMakeFiles/maia_npb.dir/ep.cpp.o" "gcc" "src/npb/CMakeFiles/maia_npb.dir/ep.cpp.o.d"
  "/root/repo/src/npb/ft.cpp" "src/npb/CMakeFiles/maia_npb.dir/ft.cpp.o" "gcc" "src/npb/CMakeFiles/maia_npb.dir/ft.cpp.o.d"
  "/root/repo/src/npb/is.cpp" "src/npb/CMakeFiles/maia_npb.dir/is.cpp.o" "gcc" "src/npb/CMakeFiles/maia_npb.dir/is.cpp.o.d"
  "/root/repo/src/npb/lu.cpp" "src/npb/CMakeFiles/maia_npb.dir/lu.cpp.o" "gcc" "src/npb/CMakeFiles/maia_npb.dir/lu.cpp.o.d"
  "/root/repo/src/npb/mg.cpp" "src/npb/CMakeFiles/maia_npb.dir/mg.cpp.o" "gcc" "src/npb/CMakeFiles/maia_npb.dir/mg.cpp.o.d"
  "/root/repo/src/npb/mg_offload.cpp" "src/npb/CMakeFiles/maia_npb.dir/mg_offload.cpp.o" "gcc" "src/npb/CMakeFiles/maia_npb.dir/mg_offload.cpp.o.d"
  "/root/repo/src/npb/mpi_runner.cpp" "src/npb/CMakeFiles/maia_npb.dir/mpi_runner.cpp.o" "gcc" "src/npb/CMakeFiles/maia_npb.dir/mpi_runner.cpp.o.d"
  "/root/repo/src/npb/openmp_runner.cpp" "src/npb/CMakeFiles/maia_npb.dir/openmp_runner.cpp.o" "gcc" "src/npb/CMakeFiles/maia_npb.dir/openmp_runner.cpp.o.d"
  "/root/repo/src/npb/signatures.cpp" "src/npb/CMakeFiles/maia_npb.dir/signatures.cpp.o" "gcc" "src/npb/CMakeFiles/maia_npb.dir/signatures.cpp.o.d"
  "/root/repo/src/npb/sp.cpp" "src/npb/CMakeFiles/maia_npb.dir/sp.cpp.o" "gcc" "src/npb/CMakeFiles/maia_npb.dir/sp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/arch/CMakeFiles/maia_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/mpi/CMakeFiles/maia_mpi.dir/DependInfo.cmake"
  "/root/repo/build/src/omp/CMakeFiles/maia_omp.dir/DependInfo.cmake"
  "/root/repo/build/src/offload/CMakeFiles/maia_offload.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/maia_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/maia_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/fabric/CMakeFiles/maia_fabric.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
