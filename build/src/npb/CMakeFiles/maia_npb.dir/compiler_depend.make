# Empty compiler generated dependencies file for maia_npb.
# This may be replaced when dependencies are built.
