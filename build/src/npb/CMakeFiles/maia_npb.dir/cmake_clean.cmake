file(REMOVE_RECURSE
  "CMakeFiles/maia_npb.dir/bt.cpp.o"
  "CMakeFiles/maia_npb.dir/bt.cpp.o.d"
  "CMakeFiles/maia_npb.dir/cfd_common.cpp.o"
  "CMakeFiles/maia_npb.dir/cfd_common.cpp.o.d"
  "CMakeFiles/maia_npb.dir/cg.cpp.o"
  "CMakeFiles/maia_npb.dir/cg.cpp.o.d"
  "CMakeFiles/maia_npb.dir/common.cpp.o"
  "CMakeFiles/maia_npb.dir/common.cpp.o.d"
  "CMakeFiles/maia_npb.dir/ep.cpp.o"
  "CMakeFiles/maia_npb.dir/ep.cpp.o.d"
  "CMakeFiles/maia_npb.dir/ft.cpp.o"
  "CMakeFiles/maia_npb.dir/ft.cpp.o.d"
  "CMakeFiles/maia_npb.dir/is.cpp.o"
  "CMakeFiles/maia_npb.dir/is.cpp.o.d"
  "CMakeFiles/maia_npb.dir/lu.cpp.o"
  "CMakeFiles/maia_npb.dir/lu.cpp.o.d"
  "CMakeFiles/maia_npb.dir/mg.cpp.o"
  "CMakeFiles/maia_npb.dir/mg.cpp.o.d"
  "CMakeFiles/maia_npb.dir/mg_offload.cpp.o"
  "CMakeFiles/maia_npb.dir/mg_offload.cpp.o.d"
  "CMakeFiles/maia_npb.dir/mpi_runner.cpp.o"
  "CMakeFiles/maia_npb.dir/mpi_runner.cpp.o.d"
  "CMakeFiles/maia_npb.dir/openmp_runner.cpp.o"
  "CMakeFiles/maia_npb.dir/openmp_runner.cpp.o.d"
  "CMakeFiles/maia_npb.dir/signatures.cpp.o"
  "CMakeFiles/maia_npb.dir/signatures.cpp.o.d"
  "CMakeFiles/maia_npb.dir/sp.cpp.o"
  "CMakeFiles/maia_npb.dir/sp.cpp.o.d"
  "libmaia_npb.a"
  "libmaia_npb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maia_npb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
