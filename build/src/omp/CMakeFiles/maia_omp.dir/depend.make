# Empty dependencies file for maia_omp.
# This may be replaced when dependencies are built.
