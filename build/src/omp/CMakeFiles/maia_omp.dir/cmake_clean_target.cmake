file(REMOVE_RECURSE
  "libmaia_omp.a"
)
