file(REMOVE_RECURSE
  "CMakeFiles/maia_omp.dir/constructs.cpp.o"
  "CMakeFiles/maia_omp.dir/constructs.cpp.o.d"
  "CMakeFiles/maia_omp.dir/schedule.cpp.o"
  "CMakeFiles/maia_omp.dir/schedule.cpp.o.d"
  "CMakeFiles/maia_omp.dir/team.cpp.o"
  "CMakeFiles/maia_omp.dir/team.cpp.o.d"
  "libmaia_omp.a"
  "libmaia_omp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maia_omp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
