file(REMOVE_RECURSE
  "libmaia_apps.a"
)
