file(REMOVE_RECURSE
  "CMakeFiles/maia_apps.dir/cart3d.cpp.o"
  "CMakeFiles/maia_apps.dir/cart3d.cpp.o.d"
  "CMakeFiles/maia_apps.dir/euler_kernel.cpp.o"
  "CMakeFiles/maia_apps.dir/euler_kernel.cpp.o.d"
  "CMakeFiles/maia_apps.dir/loadbalance.cpp.o"
  "CMakeFiles/maia_apps.dir/loadbalance.cpp.o.d"
  "CMakeFiles/maia_apps.dir/overflow.cpp.o"
  "CMakeFiles/maia_apps.dir/overflow.cpp.o.d"
  "CMakeFiles/maia_apps.dir/zone_solver.cpp.o"
  "CMakeFiles/maia_apps.dir/zone_solver.cpp.o.d"
  "CMakeFiles/maia_apps.dir/zones.cpp.o"
  "CMakeFiles/maia_apps.dir/zones.cpp.o.d"
  "libmaia_apps.a"
  "libmaia_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maia_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
