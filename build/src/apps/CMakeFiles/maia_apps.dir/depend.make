# Empty dependencies file for maia_apps.
# This may be replaced when dependencies are built.
