# Empty compiler generated dependencies file for maia_core.
# This may be replaced when dependencies are built.
