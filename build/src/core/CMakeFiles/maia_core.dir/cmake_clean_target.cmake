file(REMOVE_RECURSE
  "libmaia_core.a"
)
