file(REMOVE_RECURSE
  "CMakeFiles/maia_core.dir/figure.cpp.o"
  "CMakeFiles/maia_core.dir/figure.cpp.o.d"
  "CMakeFiles/maia_core.dir/figures_apps.cpp.o"
  "CMakeFiles/maia_core.dir/figures_apps.cpp.o.d"
  "CMakeFiles/maia_core.dir/figures_micro.cpp.o"
  "CMakeFiles/maia_core.dir/figures_micro.cpp.o.d"
  "CMakeFiles/maia_core.dir/figures_npb.cpp.o"
  "CMakeFiles/maia_core.dir/figures_npb.cpp.o.d"
  "libmaia_core.a"
  "libmaia_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maia_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
