# Empty dependencies file for maia_sim.
# This may be replaced when dependencies are built.
