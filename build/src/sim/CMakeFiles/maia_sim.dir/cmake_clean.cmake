file(REMOVE_RECURSE
  "CMakeFiles/maia_sim.dir/event_queue.cpp.o"
  "CMakeFiles/maia_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/maia_sim.dir/log.cpp.o"
  "CMakeFiles/maia_sim.dir/log.cpp.o.d"
  "CMakeFiles/maia_sim.dir/series.cpp.o"
  "CMakeFiles/maia_sim.dir/series.cpp.o.d"
  "CMakeFiles/maia_sim.dir/statistics.cpp.o"
  "CMakeFiles/maia_sim.dir/statistics.cpp.o.d"
  "CMakeFiles/maia_sim.dir/table.cpp.o"
  "CMakeFiles/maia_sim.dir/table.cpp.o.d"
  "CMakeFiles/maia_sim.dir/units.cpp.o"
  "CMakeFiles/maia_sim.dir/units.cpp.o.d"
  "libmaia_sim.a"
  "libmaia_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maia_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
