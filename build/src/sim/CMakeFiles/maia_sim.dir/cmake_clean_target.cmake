file(REMOVE_RECURSE
  "libmaia_sim.a"
)
