file(REMOVE_RECURSE
  "CMakeFiles/maia_io.dir/io_model.cpp.o"
  "CMakeFiles/maia_io.dir/io_model.cpp.o.d"
  "libmaia_io.a"
  "libmaia_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maia_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
