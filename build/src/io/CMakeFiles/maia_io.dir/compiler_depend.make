# Empty compiler generated dependencies file for maia_io.
# This may be replaced when dependencies are built.
