file(REMOVE_RECURSE
  "libmaia_io.a"
)
