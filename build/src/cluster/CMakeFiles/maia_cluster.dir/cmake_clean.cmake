file(REMOVE_RECURSE
  "CMakeFiles/maia_cluster.dir/interconnect.cpp.o"
  "CMakeFiles/maia_cluster.dir/interconnect.cpp.o.d"
  "CMakeFiles/maia_cluster.dir/scaling.cpp.o"
  "CMakeFiles/maia_cluster.dir/scaling.cpp.o.d"
  "libmaia_cluster.a"
  "libmaia_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maia_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
