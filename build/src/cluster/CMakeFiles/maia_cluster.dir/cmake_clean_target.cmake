file(REMOVE_RECURSE
  "libmaia_cluster.a"
)
