# Empty dependencies file for maia_cluster.
# This may be replaced when dependencies are built.
