# Empty dependencies file for maia_offload.
# This may be replaced when dependencies are built.
