file(REMOVE_RECURSE
  "CMakeFiles/maia_offload.dir/runtime.cpp.o"
  "CMakeFiles/maia_offload.dir/runtime.cpp.o.d"
  "libmaia_offload.a"
  "libmaia_offload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maia_offload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
