file(REMOVE_RECURSE
  "libmaia_offload.a"
)
