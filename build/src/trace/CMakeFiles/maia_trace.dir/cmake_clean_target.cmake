file(REMOVE_RECURSE
  "libmaia_trace.a"
)
