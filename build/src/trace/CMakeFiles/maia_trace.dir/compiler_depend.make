# Empty compiler generated dependencies file for maia_trace.
# This may be replaced when dependencies are built.
