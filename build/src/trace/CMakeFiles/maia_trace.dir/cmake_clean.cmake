file(REMOVE_RECURSE
  "CMakeFiles/maia_trace.dir/analyzer.cpp.o"
  "CMakeFiles/maia_trace.dir/analyzer.cpp.o.d"
  "CMakeFiles/maia_trace.dir/patterns.cpp.o"
  "CMakeFiles/maia_trace.dir/patterns.cpp.o.d"
  "libmaia_trace.a"
  "libmaia_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maia_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
