
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mpi/collectives.cpp" "src/mpi/CMakeFiles/maia_mpi.dir/collectives.cpp.o" "gcc" "src/mpi/CMakeFiles/maia_mpi.dir/collectives.cpp.o.d"
  "/root/repo/src/mpi/cost_model.cpp" "src/mpi/CMakeFiles/maia_mpi.dir/cost_model.cpp.o" "gcc" "src/mpi/CMakeFiles/maia_mpi.dir/cost_model.cpp.o.d"
  "/root/repo/src/mpi/layout.cpp" "src/mpi/CMakeFiles/maia_mpi.dir/layout.cpp.o" "gcc" "src/mpi/CMakeFiles/maia_mpi.dir/layout.cpp.o.d"
  "/root/repo/src/mpi/memory.cpp" "src/mpi/CMakeFiles/maia_mpi.dir/memory.cpp.o" "gcc" "src/mpi/CMakeFiles/maia_mpi.dir/memory.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/arch/CMakeFiles/maia_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/fabric/CMakeFiles/maia_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/maia_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
