file(REMOVE_RECURSE
  "CMakeFiles/maia_mpi.dir/collectives.cpp.o"
  "CMakeFiles/maia_mpi.dir/collectives.cpp.o.d"
  "CMakeFiles/maia_mpi.dir/cost_model.cpp.o"
  "CMakeFiles/maia_mpi.dir/cost_model.cpp.o.d"
  "CMakeFiles/maia_mpi.dir/layout.cpp.o"
  "CMakeFiles/maia_mpi.dir/layout.cpp.o.d"
  "CMakeFiles/maia_mpi.dir/memory.cpp.o"
  "CMakeFiles/maia_mpi.dir/memory.cpp.o.d"
  "libmaia_mpi.a"
  "libmaia_mpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maia_mpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
