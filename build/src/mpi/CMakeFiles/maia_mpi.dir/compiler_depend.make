# Empty compiler generated dependencies file for maia_mpi.
# This may be replaced when dependencies are built.
