file(REMOVE_RECURSE
  "libmaia_mpi.a"
)
