file(REMOVE_RECURSE
  "libmaia_mem.a"
)
