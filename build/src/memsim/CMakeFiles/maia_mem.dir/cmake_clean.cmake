file(REMOVE_RECURSE
  "CMakeFiles/maia_mem.dir/bandwidth.cpp.o"
  "CMakeFiles/maia_mem.dir/bandwidth.cpp.o.d"
  "CMakeFiles/maia_mem.dir/cache_sim.cpp.o"
  "CMakeFiles/maia_mem.dir/cache_sim.cpp.o.d"
  "CMakeFiles/maia_mem.dir/hierarchy_sim.cpp.o"
  "CMakeFiles/maia_mem.dir/hierarchy_sim.cpp.o.d"
  "CMakeFiles/maia_mem.dir/latency_walker.cpp.o"
  "CMakeFiles/maia_mem.dir/latency_walker.cpp.o.d"
  "CMakeFiles/maia_mem.dir/stream.cpp.o"
  "CMakeFiles/maia_mem.dir/stream.cpp.o.d"
  "libmaia_mem.a"
  "libmaia_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maia_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
