
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/memsim/bandwidth.cpp" "src/memsim/CMakeFiles/maia_mem.dir/bandwidth.cpp.o" "gcc" "src/memsim/CMakeFiles/maia_mem.dir/bandwidth.cpp.o.d"
  "/root/repo/src/memsim/cache_sim.cpp" "src/memsim/CMakeFiles/maia_mem.dir/cache_sim.cpp.o" "gcc" "src/memsim/CMakeFiles/maia_mem.dir/cache_sim.cpp.o.d"
  "/root/repo/src/memsim/hierarchy_sim.cpp" "src/memsim/CMakeFiles/maia_mem.dir/hierarchy_sim.cpp.o" "gcc" "src/memsim/CMakeFiles/maia_mem.dir/hierarchy_sim.cpp.o.d"
  "/root/repo/src/memsim/latency_walker.cpp" "src/memsim/CMakeFiles/maia_mem.dir/latency_walker.cpp.o" "gcc" "src/memsim/CMakeFiles/maia_mem.dir/latency_walker.cpp.o.d"
  "/root/repo/src/memsim/stream.cpp" "src/memsim/CMakeFiles/maia_mem.dir/stream.cpp.o" "gcc" "src/memsim/CMakeFiles/maia_mem.dir/stream.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/arch/CMakeFiles/maia_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/maia_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
