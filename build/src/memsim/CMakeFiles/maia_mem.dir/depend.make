# Empty dependencies file for maia_mem.
# This may be replaced when dependencies are built.
