# Empty dependencies file for maia_arch.
# This may be replaced when dependencies are built.
