file(REMOVE_RECURSE
  "libmaia_arch.a"
)
