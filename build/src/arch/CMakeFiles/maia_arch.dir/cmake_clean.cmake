file(REMOVE_RECURSE
  "CMakeFiles/maia_arch.dir/link.cpp.o"
  "CMakeFiles/maia_arch.dir/link.cpp.o.d"
  "CMakeFiles/maia_arch.dir/processor.cpp.o"
  "CMakeFiles/maia_arch.dir/processor.cpp.o.d"
  "CMakeFiles/maia_arch.dir/registry.cpp.o"
  "CMakeFiles/maia_arch.dir/registry.cpp.o.d"
  "libmaia_arch.a"
  "libmaia_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maia_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
