
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arch/link.cpp" "src/arch/CMakeFiles/maia_arch.dir/link.cpp.o" "gcc" "src/arch/CMakeFiles/maia_arch.dir/link.cpp.o.d"
  "/root/repo/src/arch/processor.cpp" "src/arch/CMakeFiles/maia_arch.dir/processor.cpp.o" "gcc" "src/arch/CMakeFiles/maia_arch.dir/processor.cpp.o.d"
  "/root/repo/src/arch/registry.cpp" "src/arch/CMakeFiles/maia_arch.dir/registry.cpp.o" "gcc" "src/arch/CMakeFiles/maia_arch.dir/registry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/maia_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
