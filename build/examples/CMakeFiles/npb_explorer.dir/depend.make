# Empty dependencies file for npb_explorer.
# This may be replaced when dependencies are built.
