file(REMOVE_RECURSE
  "CMakeFiles/symmetric_overflow.dir/symmetric_overflow.cpp.o"
  "CMakeFiles/symmetric_overflow.dir/symmetric_overflow.cpp.o.d"
  "symmetric_overflow"
  "symmetric_overflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/symmetric_overflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
