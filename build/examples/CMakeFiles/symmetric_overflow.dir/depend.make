# Empty dependencies file for symmetric_overflow.
# This may be replaced when dependencies are built.
