# Empty compiler generated dependencies file for offload_tuning.
# This may be replaced when dependencies are built.
