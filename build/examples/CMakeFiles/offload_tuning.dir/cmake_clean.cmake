file(REMOVE_RECURSE
  "CMakeFiles/offload_tuning.dir/offload_tuning.cpp.o"
  "CMakeFiles/offload_tuning.dir/offload_tuning.cpp.o.d"
  "offload_tuning"
  "offload_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offload_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
