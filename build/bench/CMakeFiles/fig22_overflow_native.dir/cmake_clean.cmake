file(REMOVE_RECURSE
  "CMakeFiles/fig22_overflow_native.dir/fig22_overflow_native.cpp.o"
  "CMakeFiles/fig22_overflow_native.dir/fig22_overflow_native.cpp.o.d"
  "fig22_overflow_native"
  "fig22_overflow_native.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig22_overflow_native.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
