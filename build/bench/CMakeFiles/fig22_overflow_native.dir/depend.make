# Empty dependencies file for fig22_overflow_native.
# This may be replaced when dependencies are built.
