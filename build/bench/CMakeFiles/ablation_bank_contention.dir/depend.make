# Empty dependencies file for ablation_bank_contention.
# This may be replaced when dependencies are built.
