file(REMOVE_RECURSE
  "CMakeFiles/ablation_bank_contention.dir/ablation_bank_contention.cpp.o"
  "CMakeFiles/ablation_bank_contention.dir/ablation_bank_contention.cpp.o.d"
  "ablation_bank_contention"
  "ablation_bank_contention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_bank_contention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
