file(REMOVE_RECURSE
  "CMakeFiles/fig20_npb_mpi.dir/fig20_npb_mpi.cpp.o"
  "CMakeFiles/fig20_npb_mpi.dir/fig20_npb_mpi.cpp.o.d"
  "fig20_npb_mpi"
  "fig20_npb_mpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig20_npb_mpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
