# Empty dependencies file for fig20_npb_mpi.
# This may be replaced when dependencies are built.
