# Empty compiler generated dependencies file for fig08_mpi_bandwidth.
# This may be replaced when dependencies are built.
