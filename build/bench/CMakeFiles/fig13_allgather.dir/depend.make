# Empty dependencies file for fig13_allgather.
# This may be replaced when dependencies are built.
