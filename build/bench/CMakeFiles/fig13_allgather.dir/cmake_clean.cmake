file(REMOVE_RECURSE
  "CMakeFiles/fig13_allgather.dir/fig13_allgather.cpp.o"
  "CMakeFiles/fig13_allgather.dir/fig13_allgather.cpp.o.d"
  "fig13_allgather"
  "fig13_allgather.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_allgather.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
