# Empty compiler generated dependencies file for fig15_omp_sync.
# This may be replaced when dependencies are built.
