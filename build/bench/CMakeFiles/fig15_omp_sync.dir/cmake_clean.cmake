file(REMOVE_RECURSE
  "CMakeFiles/fig15_omp_sync.dir/fig15_omp_sync.cpp.o"
  "CMakeFiles/fig15_omp_sync.dir/fig15_omp_sync.cpp.o.d"
  "fig15_omp_sync"
  "fig15_omp_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_omp_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
