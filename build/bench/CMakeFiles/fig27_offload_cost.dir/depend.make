# Empty dependencies file for fig27_offload_cost.
# This may be replaced when dependencies are built.
