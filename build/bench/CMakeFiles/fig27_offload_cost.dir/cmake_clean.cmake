file(REMOVE_RECURSE
  "CMakeFiles/fig27_offload_cost.dir/fig27_offload_cost.cpp.o"
  "CMakeFiles/fig27_offload_cost.dir/fig27_offload_cost.cpp.o.d"
  "fig27_offload_cost"
  "fig27_offload_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig27_offload_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
