# Empty dependencies file for fig25_mg_modes.
# This may be replaced when dependencies are built.
