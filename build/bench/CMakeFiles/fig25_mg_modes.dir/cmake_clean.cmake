file(REMOVE_RECURSE
  "CMakeFiles/fig25_mg_modes.dir/fig25_mg_modes.cpp.o"
  "CMakeFiles/fig25_mg_modes.dir/fig25_mg_modes.cpp.o.d"
  "fig25_mg_modes"
  "fig25_mg_modes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig25_mg_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
