file(REMOVE_RECURSE
  "CMakeFiles/fig04_stream.dir/fig04_stream.cpp.o"
  "CMakeFiles/fig04_stream.dir/fig04_stream.cpp.o.d"
  "fig04_stream"
  "fig04_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
