# Empty compiler generated dependencies file for fig04_stream.
# This may be replaced when dependencies are built.
