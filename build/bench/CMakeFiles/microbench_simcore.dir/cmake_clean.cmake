file(REMOVE_RECURSE
  "CMakeFiles/microbench_simcore.dir/microbench_simcore.cpp.o"
  "CMakeFiles/microbench_simcore.dir/microbench_simcore.cpp.o.d"
  "microbench_simcore"
  "microbench_simcore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microbench_simcore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
