file(REMOVE_RECURSE
  "CMakeFiles/fig11_bcast.dir/fig11_bcast.cpp.o"
  "CMakeFiles/fig11_bcast.dir/fig11_bcast.cpp.o.d"
  "fig11_bcast"
  "fig11_bcast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_bcast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
