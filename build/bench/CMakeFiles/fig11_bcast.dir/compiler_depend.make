# Empty compiler generated dependencies file for fig11_bcast.
# This may be replaced when dependencies are built.
