# Empty dependencies file for fig24_loop_collapse.
# This may be replaced when dependencies are built.
