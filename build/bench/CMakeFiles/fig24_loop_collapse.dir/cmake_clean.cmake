file(REMOVE_RECURSE
  "CMakeFiles/fig24_loop_collapse.dir/fig24_loop_collapse.cpp.o"
  "CMakeFiles/fig24_loop_collapse.dir/fig24_loop_collapse.cpp.o.d"
  "fig24_loop_collapse"
  "fig24_loop_collapse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig24_loop_collapse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
