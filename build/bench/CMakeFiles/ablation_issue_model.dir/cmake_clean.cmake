file(REMOVE_RECURSE
  "CMakeFiles/ablation_issue_model.dir/ablation_issue_model.cpp.o"
  "CMakeFiles/ablation_issue_model.dir/ablation_issue_model.cpp.o.d"
  "ablation_issue_model"
  "ablation_issue_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_issue_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
