# Empty compiler generated dependencies file for fig09_update_gain.
# This may be replaced when dependencies are built.
