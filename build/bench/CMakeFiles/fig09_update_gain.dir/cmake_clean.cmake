file(REMOVE_RECURSE
  "CMakeFiles/fig09_update_gain.dir/fig09_update_gain.cpp.o"
  "CMakeFiles/fig09_update_gain.dir/fig09_update_gain.cpp.o.d"
  "fig09_update_gain"
  "fig09_update_gain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_update_gain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
