# Empty dependencies file for fig05_latency.
# This may be replaced when dependencies are built.
