# Empty compiler generated dependencies file for fig16_omp_sched.
# This may be replaced when dependencies are built.
