file(REMOVE_RECURSE
  "CMakeFiles/fig16_omp_sched.dir/fig16_omp_sched.cpp.o"
  "CMakeFiles/fig16_omp_sched.dir/fig16_omp_sched.cpp.o.d"
  "fig16_omp_sched"
  "fig16_omp_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_omp_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
