# Empty dependencies file for fig21_cart3d.
# This may be replaced when dependencies are built.
