file(REMOVE_RECURSE
  "CMakeFiles/fig21_cart3d.dir/fig21_cart3d.cpp.o"
  "CMakeFiles/fig21_cart3d.dir/fig21_cart3d.cpp.o.d"
  "fig21_cart3d"
  "fig21_cart3d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig21_cart3d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
