# Empty dependencies file for fig17_io.
# This may be replaced when dependencies are built.
