file(REMOVE_RECURSE
  "CMakeFiles/fig17_io.dir/fig17_io.cpp.o"
  "CMakeFiles/fig17_io.dir/fig17_io.cpp.o.d"
  "fig17_io"
  "fig17_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
