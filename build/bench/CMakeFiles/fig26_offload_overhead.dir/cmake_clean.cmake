file(REMOVE_RECURSE
  "CMakeFiles/fig26_offload_overhead.dir/fig26_offload_overhead.cpp.o"
  "CMakeFiles/fig26_offload_overhead.dir/fig26_offload_overhead.cpp.o.d"
  "fig26_offload_overhead"
  "fig26_offload_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig26_offload_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
