# Empty dependencies file for fig26_offload_overhead.
# This may be replaced when dependencies are built.
