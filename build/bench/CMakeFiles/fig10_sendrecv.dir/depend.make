# Empty dependencies file for fig10_sendrecv.
# This may be replaced when dependencies are built.
