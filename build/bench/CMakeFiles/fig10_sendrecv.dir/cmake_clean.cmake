file(REMOVE_RECURSE
  "CMakeFiles/fig10_sendrecv.dir/fig10_sendrecv.cpp.o"
  "CMakeFiles/fig10_sendrecv.dir/fig10_sendrecv.cpp.o.d"
  "fig10_sendrecv"
  "fig10_sendrecv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_sendrecv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
