file(REMOVE_RECURSE
  "CMakeFiles/ablation_dapl_providers.dir/ablation_dapl_providers.cpp.o"
  "CMakeFiles/ablation_dapl_providers.dir/ablation_dapl_providers.cpp.o.d"
  "ablation_dapl_providers"
  "ablation_dapl_providers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dapl_providers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
