# Empty compiler generated dependencies file for ablation_dapl_providers.
# This may be replaced when dependencies are built.
