file(REMOVE_RECURSE
  "CMakeFiles/fig06_membw.dir/fig06_membw.cpp.o"
  "CMakeFiles/fig06_membw.dir/fig06_membw.cpp.o.d"
  "fig06_membw"
  "fig06_membw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_membw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
