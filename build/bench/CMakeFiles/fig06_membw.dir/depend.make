# Empty dependencies file for fig06_membw.
# This may be replaced when dependencies are built.
