file(REMOVE_RECURSE
  "CMakeFiles/ablation_collective_switch.dir/ablation_collective_switch.cpp.o"
  "CMakeFiles/ablation_collective_switch.dir/ablation_collective_switch.cpp.o.d"
  "ablation_collective_switch"
  "ablation_collective_switch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_collective_switch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
