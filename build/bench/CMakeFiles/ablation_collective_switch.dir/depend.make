# Empty dependencies file for ablation_collective_switch.
# This may be replaced when dependencies are built.
