# Empty dependencies file for fig23_overflow_symmetric.
# This may be replaced when dependencies are built.
