file(REMOVE_RECURSE
  "CMakeFiles/fig23_overflow_symmetric.dir/fig23_overflow_symmetric.cpp.o"
  "CMakeFiles/fig23_overflow_symmetric.dir/fig23_overflow_symmetric.cpp.o.d"
  "fig23_overflow_symmetric"
  "fig23_overflow_symmetric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig23_overflow_symmetric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
