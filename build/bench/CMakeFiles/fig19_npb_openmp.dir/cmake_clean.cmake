file(REMOVE_RECURSE
  "CMakeFiles/fig19_npb_openmp.dir/fig19_npb_openmp.cpp.o"
  "CMakeFiles/fig19_npb_openmp.dir/fig19_npb_openmp.cpp.o.d"
  "fig19_npb_openmp"
  "fig19_npb_openmp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_npb_openmp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
