# Empty compiler generated dependencies file for fig19_npb_openmp.
# This may be replaced when dependencies are built.
