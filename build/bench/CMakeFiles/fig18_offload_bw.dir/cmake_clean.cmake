file(REMOVE_RECURSE
  "CMakeFiles/fig18_offload_bw.dir/fig18_offload_bw.cpp.o"
  "CMakeFiles/fig18_offload_bw.dir/fig18_offload_bw.cpp.o.d"
  "fig18_offload_bw"
  "fig18_offload_bw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_offload_bw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
