# Empty dependencies file for fig14_alltoall.
# This may be replaced when dependencies are built.
