file(REMOVE_RECURSE
  "CMakeFiles/fig14_alltoall.dir/fig14_alltoall.cpp.o"
  "CMakeFiles/fig14_alltoall.dir/fig14_alltoall.cpp.o.d"
  "fig14_alltoall"
  "fig14_alltoall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_alltoall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
