file(REMOVE_RECURSE
  "CMakeFiles/npb_perf_test.dir/npb_perf_test.cpp.o"
  "CMakeFiles/npb_perf_test.dir/npb_perf_test.cpp.o.d"
  "npb_perf_test"
  "npb_perf_test.pdb"
  "npb_perf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/npb_perf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
