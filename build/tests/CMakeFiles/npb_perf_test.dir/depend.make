# Empty dependencies file for npb_perf_test.
# This may be replaced when dependencies are built.
