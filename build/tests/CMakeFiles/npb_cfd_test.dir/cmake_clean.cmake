file(REMOVE_RECURSE
  "CMakeFiles/npb_cfd_test.dir/npb_cfd_test.cpp.o"
  "CMakeFiles/npb_cfd_test.dir/npb_cfd_test.cpp.o.d"
  "npb_cfd_test"
  "npb_cfd_test.pdb"
  "npb_cfd_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/npb_cfd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
