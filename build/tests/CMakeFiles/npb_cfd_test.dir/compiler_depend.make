# Empty compiler generated dependencies file for npb_cfd_test.
# This may be replaced when dependencies are built.
