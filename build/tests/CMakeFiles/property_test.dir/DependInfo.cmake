
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/property_test.cpp" "tests/CMakeFiles/property_test.dir/property_test.cpp.o" "gcc" "tests/CMakeFiles/property_test.dir/property_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/maia_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/maia_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/maia_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/maia_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/maia_io.dir/DependInfo.cmake"
  "/root/repo/build/src/npb/CMakeFiles/maia_npb.dir/DependInfo.cmake"
  "/root/repo/build/src/mpi/CMakeFiles/maia_mpi.dir/DependInfo.cmake"
  "/root/repo/build/src/offload/CMakeFiles/maia_offload.dir/DependInfo.cmake"
  "/root/repo/build/src/fabric/CMakeFiles/maia_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/perf/CMakeFiles/maia_perf.dir/DependInfo.cmake"
  "/root/repo/build/src/omp/CMakeFiles/maia_omp.dir/DependInfo.cmake"
  "/root/repo/build/src/memsim/CMakeFiles/maia_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/maia_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/maia_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
