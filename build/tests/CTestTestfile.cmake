# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/arch_test[1]_include.cmake")
include("/root/repo/build/tests/memsim_test[1]_include.cmake")
include("/root/repo/build/tests/fabric_test[1]_include.cmake")
include("/root/repo/build/tests/omp_test[1]_include.cmake")
include("/root/repo/build/tests/mpi_test[1]_include.cmake")
include("/root/repo/build/tests/io_test[1]_include.cmake")
include("/root/repo/build/tests/perf_test[1]_include.cmake")
include("/root/repo/build/tests/npb_kernels_test[1]_include.cmake")
include("/root/repo/build/tests/npb_cfd_test[1]_include.cmake")
include("/root/repo/build/tests/npb_perf_test[1]_include.cmake")
include("/root/repo/build/tests/apps_test[1]_include.cmake")
include("/root/repo/build/tests/figures_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/collectives_ext_test[1]_include.cmake")
