// Deterministic network-fault injection for transport tests: a FaultProxy
// sits between a protocol client and a real server, forwarding the byte
// stream through a seeded misbehaviour schedule.
//
// Faults are *stream-shaped*, matching what a real network does to a TCP
// byte stream (the protocol never sees packet boundaries, so these are the
// only faults that exist at its layer):
//
//   * chunking     — bytes are forwarded in chunks of seeded pseudo-random
//                    size (1..max_chunk), so frame headers and payloads
//                    arrive split at arbitrary offsets.  Partial delivery
//                    is the default fault; a correct FrameParser must not
//                    care.
//   * delay        — an optional per-chunk stall, turning every chunk
//                    boundary into a visible partial-read window.
//   * duplication  — a chunk forwarded twice with probability p_dup_chunk.
//                    On a stream this is CORRUPTION (the duplicate bytes
//                    shift everything after them), which the receiver must
//                    reject via CRC / magic, never half-accept.
//   * drop         — a chunk swallowed with probability p_drop_chunk.
//                    Also corruption: the stream loses sync or stalls, and
//                    the client must fail typed, not hang forever (callers
//                    pair this with a receive timeout or connection kill).
//   * kill-after-N — arm_kill_after(n) cuts every connection after n more
//                    forwarded bytes, truncating mid-frame.  The canonical
//                    "backend died mid-response" fault.
//
// Every random decision derives from one seed (pass tests/test_seed.hpp's
// case_seed), mixed per-connection, per-direction, and per-chunk with a
// splitmix64 finalizer — a failing run replays exactly from the logged
// base seed.  All shared state is atomic or mutex-guarded: the proxy runs
// clean under TSan.
#pragma once

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/transport.hpp"

namespace maia::test {

class FaultProxy {
 public:
  struct Config {
    std::string target;            ///< where to forward: any address scheme
    std::uint32_t seed = 1;        ///< schedule seed (use case_seed(...))
    std::size_t max_chunk = 512;   ///< forwarded chunk size in [1, max_chunk]
    std::uint32_t chunk_delay_us = 0;  ///< stall before forwarding each chunk
    double p_drop_chunk = 0.0;     ///< swallow a chunk (stream truncation)
    double p_dup_chunk = 0.0;      ///< forward a chunk twice (stream corruption)
  };

  explicit FaultProxy(Config config) : config_(std::move(config)) {
    static std::atomic<int> counter{0};
    listen_path_ = "/tmp/maia_fault_proxy." + std::to_string(::getpid()) +
                   "." + std::to_string(counter.fetch_add(1)) + ".sock";
  }

  ~FaultProxy() { stop(); }

  FaultProxy(const FaultProxy&) = delete;
  FaultProxy& operator=(const FaultProxy&) = delete;

  /// Clients connect here ("unix:" + a unique path).
  std::string address() const { return "unix:" + listen_path_; }

  bool start(std::string* error = nullptr) {
    net::Address addr;
    if (!net::parse_address(address(), addr, error)) return false;
    ::unlink(listen_path_.c_str());
    net::TransportResult listener = net::bind_listen(addr);
    if (!listener.ok()) {
      if (error != nullptr) *error = listener.message;
      return false;
    }
    listen_fd_ = listener.fd;
    stopping_.store(false, std::memory_order_release);
    accept_thread_ = std::thread([this] { accept_loop(); });
    return true;
  }

  void stop() {
    if (listen_fd_ < 0) return;
    stopping_.store(true, std::memory_order_release);
    ::shutdown(listen_fd_, SHUT_RDWR);
    if (accept_thread_.joinable()) accept_thread_.join();
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(listen_path_.c_str());
    std::vector<std::unique_ptr<Conn>> conns;
    {
      std::lock_guard<std::mutex> lock(conns_mutex_);
      conns.swap(conns_);
    }
    for (auto& conn : conns) {
      conn->shutdown_both();
      conn->join();
    }
  }

  /// Cut every connection after `bytes` more forwarded bytes (global
  /// across connections and directions; the budget spends exactly once).
  void arm_kill_after(std::uint64_t bytes) {
    std::lock_guard<std::mutex> lock(kill_mutex_);
    kill_armed_ = true;
    kill_remaining_ = bytes;
  }

  std::uint64_t forwarded_bytes() const {
    return forwarded_bytes_.load(std::memory_order_relaxed);
  }
  std::uint64_t connections() const {
    return connections_.load(std::memory_order_relaxed);
  }
  std::uint64_t kills() const {
    return kills_.load(std::memory_order_relaxed);
  }

 private:
  struct Conn {
    int client_fd = -1;
    int server_fd = -1;
    std::thread up;    ///< client -> server
    std::thread down;  ///< server -> client

    void shutdown_both() {
      // shutdown (not close) unblocks the pump threads without racing the
      // fds they are still reading; close happens after join.
      if (client_fd >= 0) ::shutdown(client_fd, SHUT_RDWR);
      if (server_fd >= 0) ::shutdown(server_fd, SHUT_RDWR);
    }
    void join() {
      if (up.joinable()) up.join();
      if (down.joinable()) down.join();
      if (client_fd >= 0) ::close(client_fd);
      if (server_fd >= 0) ::close(server_fd);
      client_fd = server_fd = -1;
    }
  };

  static std::uint64_t splitmix(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ull;
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return x;
  }

  void accept_loop() {
    while (!stopping_.load(std::memory_order_acquire)) {
      pollfd pfd{listen_fd_, POLLIN, 0};
      const int rc = ::poll(&pfd, 1, 50);
      if (rc <= 0) continue;
      const int client_fd = ::accept(listen_fd_, nullptr, nullptr);
      if (client_fd < 0) continue;
      net::Address target;
      std::string reason;
      if (!net::parse_address(config_.target, target, &reason)) {
        ::close(client_fd);
        continue;
      }
      net::TransportResult upstream = net::dial(target);
      if (!upstream.ok()) {
        ::close(client_fd);
        continue;
      }
      net::tune_stream_fd(client_fd);
      const std::uint64_t conn_id =
          connections_.fetch_add(1, std::memory_order_relaxed);
      auto conn = std::make_unique<Conn>();
      conn->client_fd = client_fd;
      conn->server_fd = upstream.fd;
      Conn* raw = conn.get();
      raw->up = std::thread([this, raw, conn_id] {
        pump(*raw, raw->client_fd, raw->server_fd, conn_id, /*salt=*/0x11);
      });
      raw->down = std::thread([this, raw, conn_id] {
        pump(*raw, raw->server_fd, raw->client_fd, conn_id, /*salt=*/0x22);
      });
      std::lock_guard<std::mutex> lock(conns_mutex_);
      conns_.push_back(std::move(conn));
    }
  }

  void pump(Conn& conn, int from_fd, int to_fd, std::uint64_t conn_id,
            std::uint32_t salt) {
    std::vector<std::uint8_t> buf(config_.max_chunk > 0 ? config_.max_chunk
                                                        : 1);
    std::uint64_t chunk_index = 0;
    for (;;) {
      const std::uint64_t mix =
          splitmix((static_cast<std::uint64_t>(config_.seed) << 24) ^
                   (conn_id << 8) ^ salt ^ (chunk_index * 0x10001ull));
      const std::size_t want = 1 + static_cast<std::size_t>(
                                       mix % (config_.max_chunk > 0
                                                  ? config_.max_chunk
                                                  : 1));
      const ssize_t n = ::read(from_fd, buf.data(), want);
      if (n <= 0) break;
      ++chunk_index;
      if (config_.chunk_delay_us > 0) {
        std::this_thread::sleep_for(
            std::chrono::microseconds(config_.chunk_delay_us));
      }
      const double drop_roll = static_cast<double>((mix >> 16) & 0xffff) / 65536.0;
      const double dup_roll = static_cast<double>((mix >> 32) & 0xffff) / 65536.0;
      if (drop_roll < config_.p_drop_chunk) continue;  // swallowed
      const int copies = dup_roll < config_.p_dup_chunk ? 2 : 1;
      bool alive = true;
      for (int c = 0; c < copies && alive; ++c) {
        alive = forward(to_fd, buf.data(), static_cast<std::size_t>(n));
      }
      if (!alive) break;
    }
    conn.shutdown_both();
  }

  /// Write `n` bytes (honouring the kill budget).  False when the
  /// connection must die: budget exhausted or the peer is gone.
  bool forward(int to_fd, const std::uint8_t* p, std::size_t n) {
    std::size_t allow = n;
    bool kill = false;
    {
      std::lock_guard<std::mutex> lock(kill_mutex_);
      if (kill_armed_) {
        if (kill_remaining_ <= n) {
          allow = static_cast<std::size_t>(kill_remaining_);
          kill_armed_ = false;
          kill = true;
        } else {
          kill_remaining_ -= n;
        }
      }
    }
    std::size_t off = 0;
    while (off < allow) {
      // MSG_NOSIGNAL: a dead peer must surface as EPIPE, not SIGPIPE.
      const ssize_t w =
          ::send(to_fd, p + off, allow - off, MSG_NOSIGNAL);
      if (w <= 0) {
        if (w < 0 && errno == EINTR) continue;
        return false;
      }
      off += static_cast<std::size_t>(w);
      forwarded_bytes_.fetch_add(static_cast<std::uint64_t>(w),
                                 std::memory_order_relaxed);
    }
    if (kill) {
      kills_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    return true;
  }

  Config config_;
  std::string listen_path_;
  int listen_fd_ = -1;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};

  std::mutex conns_mutex_;
  std::vector<std::unique_ptr<Conn>> conns_;

  std::mutex kill_mutex_;
  bool kill_armed_ = false;
  std::uint64_t kill_remaining_ = 0;

  std::atomic<std::uint64_t> forwarded_bytes_{0};
  std::atomic<std::uint64_t> connections_{0};
  std::atomic<std::uint64_t> kills_{0};
};

}  // namespace maia::test
