// Tests for the trace module: pattern generation, replay through the
// functional hierarchy, and the locality metrics that ground the
// performance-signature parameters.
#include <gtest/gtest.h>

#include "arch/registry.hpp"
#include "trace/analyzer.hpp"
#include "trace/patterns.hpp"

namespace maia::trace {
namespace {

// -------------------------------------------------------------- patterns ---

TEST(Patterns, StreamTriadAccessCounts) {
  const auto t = trace_stream_triad(1000);
  EXPECT_EQ(t.size(), 3000u);  // 2 reads + 1 write per element
  // 3 arrays of 8000 B = 375 lines.
  EXPECT_EQ(t.lines_touched(), 375u);
}

TEST(Patterns, Stencil27TouchesTwoArrays) {
  const std::size_t n = 16;
  const auto t = trace_stencil27(n);
  const std::size_t interior = (n - 2) * (n - 2) * (n - 2);
  EXPECT_EQ(t.size(), interior * 28);  // 27 reads + 1 write
  // Roughly 2 * n^3 doubles of footprint.
  EXPECT_NEAR(static_cast<double>(t.footprint()),
              2.0 * static_cast<double>(n * n * n) * 8.0, 0.15 * 2.0 * n * n * n * 8.0);
}

TEST(Patterns, SpmvGatherAccessCounts) {
  const auto t = trace_spmv_gather(500, 10);
  EXPECT_EQ(t.size(), 500u * 10u * 3u + 500u);
}

TEST(Patterns, TransposeWalkIsStrided) {
  const auto t = trace_transpose_walk(64);
  ASSERT_EQ(t.size(), 64u * 64u);
  // Consecutive accesses within one column are n*8 bytes apart.
  EXPECT_EQ(t.accesses()[1].address - t.accesses()[0].address, 64u * 8u);
}

TEST(Patterns, PointerChaseVisitsEveryLineOnce) {
  const auto t = trace_pointer_chase(512);
  EXPECT_EQ(t.size(), 512u);
  EXPECT_EQ(t.lines_touched(), 512u);
}

TEST(Patterns, EmptyTraceBehaves) {
  AccessTrace t("empty");
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.footprint(), 0u);
}

// -------------------------------------------------------------- analyzer ---

class AnalyzerOnBothMachines : public ::testing::TestWithParam<bool> {
 protected:
  arch::ProcessorModel proc() const {
    return GetParam() ? arch::xeon_phi_5110p() : arch::sandy_bridge_e5_2670();
  }
};

TEST_P(AnalyzerOnBothMachines, LevelMixSumsToOne) {
  const TraceAnalyzer an(proc());
  const auto r = an.analyze(trace_stream_triad(200000));
  double sum = 0.0;
  for (double f : r.level_mix) sum += f;
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST_P(AnalyzerOnBothMachines, StreamIsAlmostPerfectlySequential) {
  const TraceAnalyzer an(proc());
  // 3 x 1.6 MB arrays: way past L2, so misses stream from DRAM.
  const auto r = an.analyze(trace_stream_triad(200000));
  EXPECT_GT(r.sequential_miss_fraction, 0.6);
  EXPECT_LT(r.gather_fraction, 0.05);
}

TEST_P(AnalyzerOnBothMachines, SpmvIsGatherHeavy) {
  const TraceAnalyzer an(proc());
  const auto r = an.analyze(trace_spmv_gather(200000, 12));
  EXPECT_GT(r.gather_fraction, 0.2);
}

TEST(Analyzer, HostL3CoversCgGathersButPhiHasNoL3) {
  // The paper's CG diagnosis, reproduced from the trace: the x vector
  // (1.6 MB) fits the host's 20 MB L3, so host DRAM misses are the
  // streaming val/col arrays (sequential); on the Phi the gathers go to
  // DRAM and the miss stream turns random.
  const auto t = trace_spmv_gather(200000, 12);
  const auto host = TraceAnalyzer(arch::sandy_bridge_e5_2670()).analyze(t);
  const auto phi = TraceAnalyzer(arch::xeon_phi_5110p()).analyze(t);
  EXPECT_GT(host.sequential_miss_fraction, 0.8);
  EXPECT_LT(phi.sequential_miss_fraction, 0.6);
  EXPECT_GT(phi.dram_miss_rate(), host.dram_miss_rate());
}

INSTANTIATE_TEST_SUITE_P(Machines, AnalyzerOnBothMachines, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "Phi" : "Host";
                         });

TEST(Analyzer, CacheResidentTraceNeverTouchesDram) {
  const TraceAnalyzer an(arch::sandy_bridge_e5_2670());
  // 1000 lines = 64 KB: fits L2 after the cold pass; replay it twice by
  // concatenation via two analyses on the same hierarchy is not exposed,
  // so check the cold-pass mix instead: all misses must be cold (= lines).
  const auto t = trace_pointer_chase(1000);
  const auto r = an.analyze(t);
  EXPECT_NEAR(r.dram_miss_rate(), 1.0, 1e-12);  // cold pass: all DRAM
  EXPECT_EQ(r.dram_bytes, 1000u * 64u);
}

TEST(Analyzer, PointerChaseHasNoSequentialMisses) {
  const TraceAnalyzer an(arch::xeon_phi_5110p());
  const auto r = an.analyze(trace_pointer_chase(4096));
  EXPECT_LT(r.sequential_miss_fraction, 0.05);
}

TEST(Analyzer, ThreadsPerCoreShrinkEffectiveCache) {
  // The same stencil working set hits less cache when 4 threads share it.
  const auto phi = arch::xeon_phi_5110p();
  // Two sweeps over ~221 KB of arrays: the second sweep hits the 512 KB
  // L2 when a thread owns it alone, misses when four threads share it.
  const auto t = trace_stencil27(24, 2);
  const auto alone = TraceAnalyzer(phi, 1).analyze(t);
  const auto shared = TraceAnalyzer(phi, 4).analyze(t);
  EXPECT_GT(shared.dram_miss_rate(), alone.dram_miss_rate());
}

TEST(Analyzer, AvgCyclesTrackTheMix) {
  const auto host = arch::sandy_bridge_e5_2670();
  const TraceAnalyzer an(host);
  const auto small = an.analyze(trace_pointer_chase(256));   // 16 KB
  const auto large = an.analyze(trace_pointer_chase(1 << 18));  // 16 MB
  EXPECT_LT(small.avg_cycles_per_access, large.avg_cycles_per_access + 1);
}

// --------------------------------------------- signature grounding ---------

TEST(SignatureGrounding, PrefetchabilityOrdersStreamAboveStencilAboveSpmv) {
  // The empirical basis of the maia_npb prefetch_efficiency values:
  // STREAM-like >= stencil (MG) >> gather (CG).
  const TraceAnalyzer an(arch::xeon_phi_5110p());
  const double stream = TraceAnalyzer::estimated_prefetch_efficiency(
      an.analyze(trace_stream_triad(400000)));
  const double stencil = TraceAnalyzer::estimated_prefetch_efficiency(
      an.analyze(trace_stencil27(56)));
  const double spmv = TraceAnalyzer::estimated_prefetch_efficiency(
      an.analyze(trace_spmv_gather(300000, 12)));
  EXPECT_GT(stream, 0.8);
  EXPECT_GT(stream, stencil);
  EXPECT_GT(stencil, spmv);
  EXPECT_LT(spmv, 0.5);
}

TEST(SignatureGrounding, TransposeDefeatsPrefetchAtLargeN) {
  // FT's transpose at n rows x 8 B: every access a new page once n*8 > line
  // coverage — low sequential fraction, like its 0.35 signature value.
  const TraceAnalyzer an(arch::xeon_phi_5110p());
  const auto r = an.analyze(trace_transpose_walk(1024));
  EXPECT_LT(TraceAnalyzer::estimated_prefetch_efficiency(r), 0.5);
}

TEST(SignatureGrounding, UncoveredRateBoundsTheEstimate) {
  TraceReport r;
  r.sequential_miss_fraction = 0.0;
  EXPECT_DOUBLE_EQ(TraceAnalyzer::estimated_prefetch_efficiency(r, 0.18), 0.18);
  r.sequential_miss_fraction = 1.0;
  EXPECT_DOUBLE_EQ(TraceAnalyzer::estimated_prefetch_efficiency(r, 0.18), 1.0);
}

}  // namespace
}  // namespace maia::trace
