// Numerical verification of the NPB kernel implementations: the random
// stream, EP, CG, MG, FT, IS and the 5x5 block machinery.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "npb/cfd_common.hpp"
#include "npb/cg.hpp"
#include "npb/common.hpp"
#include "npb/ep.hpp"
#include "npb/ft.hpp"
#include "npb/is.hpp"
#include "npb/mg.hpp"

namespace maia::npb {
namespace {

// ------------------------------------------------------------ NpbRandom ---

TEST(NpbRandom, MatchesReferenceRecurrence) {
  // x1 = a * seed mod 2^46 computed independently.
  NpbRandom r(314159265.0);
  const double expected =
      static_cast<double>((static_cast<__uint128_t>(1220703125ull) *
                           314159265ull) &
                          ((1ull << 46) - 1)) *
      std::pow(2.0, -46);
  EXPECT_DOUBLE_EQ(r.next(), expected);
}

TEST(NpbRandom, DeviatesAreInUnitInterval) {
  NpbRandom r;
  for (int i = 0; i < 100000; ++i) {
    const double d = r.next();
    EXPECT_GT(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(NpbRandom, SkipMatchesSequentialAdvance) {
  NpbRandom a, b;
  for (int i = 0; i < 1000; ++i) a.next();
  b.skip(1000);
  EXPECT_DOUBLE_EQ(a.state(), b.state());
}

TEST(NpbRandom, SkipZeroIsIdentity) {
  NpbRandom a;
  const double s = a.state();
  a.skip(0);
  EXPECT_DOUBLE_EQ(a.state(), s);
}

TEST(NpbRandom, FillMatchesNext) {
  NpbRandom a, b;
  double buf[16];
  a.fill(16, buf);
  for (double x : buf) EXPECT_DOUBLE_EQ(x, b.next());
}

// -------------------------------------------------------------------- EP ---

TEST(Ep, BlockDecompositionIsExact) {
  // The parallel decomposition must not change the result at all.
  const auto one = run_ep(14, 1);
  const auto four = run_ep(14, 4);
  const auto seven = run_ep(14, 7);
  EXPECT_DOUBLE_EQ(one.sx, four.sx);
  EXPECT_DOUBLE_EQ(one.sy, four.sy);
  EXPECT_EQ(one.counts, four.counts);
  EXPECT_DOUBLE_EQ(one.sx, seven.sx);
  EXPECT_EQ(one.counts, seven.counts);
}

TEST(Ep, AcceptanceRateIsPiOverFour) {
  const auto r = run_ep(18);
  const double rate =
      static_cast<double>(r.pairs_accepted) / static_cast<double>(1 << 18);
  EXPECT_NEAR(rate, std::numbers::pi / 4.0, 0.01);
}

TEST(Ep, GaussianMomentsAreCorrect) {
  // Sum of N Gaussian deviates ~ N(0, N): |sx| should be O(sqrt(N)).
  const auto r = run_ep(18);
  const double n = static_cast<double>(r.pairs_accepted);
  EXPECT_LT(std::fabs(r.sx), 5.0 * std::sqrt(n));
  EXPECT_LT(std::fabs(r.sy), 5.0 * std::sqrt(n));
}

TEST(Ep, AnnulusCountsDecayAndSumToAccepted) {
  const auto r = run_ep(18);
  EXPECT_EQ(r.total_counted(), r.pairs_accepted);
  // Nearly all mass below |t|=4; bin counts strictly decreasing at first.
  EXPECT_GT(r.counts[0], r.counts[1]);
  EXPECT_GT(r.counts[1], r.counts[2]);
  EXPECT_EQ(r.counts[9], 0);
}

TEST(Ep, ClassSizes) {
  EXPECT_EQ(ep_log2_pairs(ProblemClass::kS), 24);
  EXPECT_EQ(ep_log2_pairs(ProblemClass::kC), 32);
}

TEST(Ep, RejectsBadArguments) {
  EXPECT_THROW(run_ep(0), std::invalid_argument);
  EXPECT_THROW(run_ep(14, 0), std::invalid_argument);
}

// -------------------------------------------------------------------- CG ---

TEST(Cg, SparseMatrixIsSymmetric) {
  const auto a = make_sparse_spd(64, 6, 10.0);
  const auto d = a.to_dense();
  for (std::size_t i = 0; i < a.n; ++i) {
    for (std::size_t j = 0; j < a.n; ++j) {
      EXPECT_DOUBLE_EQ(d[i * a.n + j], d[j * a.n + i]);
    }
  }
}

TEST(Cg, SparseMultiplyMatchesDense) {
  const auto a = make_sparse_spd(48, 5, 8.0);
  const auto d = a.to_dense();
  std::vector<double> x(a.n);
  NpbRandom rng(7.0 * 1e8);
  for (auto& v : x) v = rng.next() - 0.5;
  std::vector<double> y_sparse;
  a.multiply(x, y_sparse);
  for (std::size_t i = 0; i < a.n; ++i) {
    double y = 0.0;
    for (std::size_t j = 0; j < a.n; ++j) y += d[i * a.n + j] * x[j];
    EXPECT_NEAR(y_sparse[i], y, 1e-10);
  }
}

TEST(Cg, SolverSolvesTheSystem) {
  const auto a = make_sparse_spd(96, 6, 12.0);
  std::vector<double> b(a.n, 1.0);
  std::vector<double> x;
  double res = 0.0;
  cg_solve(a, b, x, 200, 1e-12, &res);
  EXPECT_LT(res, 1e-10);
  std::vector<double> ax;
  a.multiply(x, ax);
  for (std::size_t i = 0; i < a.n; ++i) EXPECT_NEAR(ax[i], 1.0, 1e-8);
}

TEST(Cg, CgConvergesInAtMostNIterations) {
  const auto a = make_sparse_spd(32, 4, 6.0);
  std::vector<double> b(a.n, 1.0), x;
  const int iters = cg_solve(a, b, x, 1000, 1e-12);
  EXPECT_LE(iters, static_cast<int>(a.n) + 1);
}

TEST(Cg, ZetaConvergesToSmallestEigenvalue) {
  // Inverse power iteration: zeta -> shift + lambda_min(A).  Use a
  // diagonal matrix with a well-separated smallest eigenvalue so the
  // convergence ratio (lambda_1/lambda_2 = 0.4) makes 40 outer iterations
  // decisive.
  SparseMatrix a;
  a.n = 16;
  a.row_start.resize(a.n + 1);
  for (std::size_t i = 0; i < a.n; ++i) {
    a.row_start[i + 1] = i + 1;
    a.col.push_back(i);
    a.val.push_back(i == 0 ? 2.0 : 5.0 + static_cast<double>(i));
  }
  const double shift = 1.5;
  const auto r = run_cg(a, shift, 40, 50);
  EXPECT_NEAR(r.zeta, shift + 2.0, 1e-9);
}

TEST(Cg, ZetaHistoryStabilizes) {
  // On a random SPD matrix the low eigenvalues cluster, so inverse
  // iteration converges linearly: require the last step to move zeta by
  // well under 1%.
  const auto a = make_sparse_spd(40, 5, 9.0);
  const auto r = run_cg(a, 2.5, 40, 100);
  const auto& h = r.zeta_history;
  ASSERT_GE(h.size(), 3u);
  EXPECT_NEAR(h[h.size() - 1], h[h.size() - 2], 5e-3 * std::fabs(h.back()));
}

// -------------------------------------------------------------------- MG ---

TEST(Mg, StencilOnConstantFieldScalesBySumOfWeights) {
  Grid3 u(8);
  u.fill(1.0);
  Grid3 out;
  apply_stencil(u, out, kPoissonA);
  // Weight sum: a0 + 6*a1 + 12*a2 + 8*a3 = -8/3 + 0 + 2 + 2/3 = 0.
  for (double v : out.raw()) EXPECT_NEAR(v, 0.0, 1e-14);
}

TEST(Mg, ResidualOfExactSolutionIsZero) {
  // If u solves A u = v pointwise, the residual vanishes: use v = A u for
  // a random u.
  Grid3 u(8);
  NpbRandom rng;
  for (auto& x : u.raw()) x = rng.next();
  Grid3 v;
  apply_stencil(u, v, kPoissonA);
  Grid3 r;
  residual(u, v, r);
  EXPECT_NEAR(r.norm2(), 0.0, 1e-14);
}

TEST(Mg, RestrictionPreservesConstants) {
  Grid3 fine(16);
  fine.fill(3.0);
  Grid3 coarse;
  restrict_grid(fine, coarse);
  EXPECT_EQ(coarse.n(), 8u);
  for (double v : coarse.raw()) EXPECT_NEAR(v, 3.0, 1e-13);
}

TEST(Mg, ProlongationPreservesConstants) {
  Grid3 coarse(8);
  coarse.fill(2.0);
  Grid3 fine(16);
  prolongate_add(coarse, fine);
  for (double v : fine.raw()) EXPECT_NEAR(v, 2.0, 1e-13);
}

TEST(Mg, ProlongationRejectsMismatchedGrids) {
  Grid3 coarse(8);
  Grid3 fine(24);
  EXPECT_THROW(prolongate_add(coarse, fine), std::invalid_argument);
}

TEST(Mg, VCyclesReduceResidual) {
  const Grid3 v = make_mg_rhs(32);
  const auto result = run_mg(v, 6);
  ASSERT_EQ(result.residual_history.size(), 6u);
  // Each V-cycle contracts the residual; require a healthy overall drop.
  EXPECT_LT(result.final_residual_norm, 0.05 * result.initial_residual_norm);
  for (std::size_t i = 1; i < result.residual_history.size(); ++i) {
    EXPECT_LT(result.residual_history[i], result.residual_history[i - 1]);
  }
}

TEST(Mg, RhsHasZeroMeanCharges) {
  const Grid3 v = make_mg_rhs(32);
  const double sum = std::accumulate(v.raw().begin(), v.raw().end(), 0.0);
  // +-1 charges can collide, but the net charge stays small.
  EXPECT_LE(std::fabs(sum), 2.0);
}

TEST(Mg, ClassGridSizes) {
  EXPECT_EQ(mg_grid_size(ProblemClass::kS), 32u);
  EXPECT_EQ(mg_grid_size(ProblemClass::kC), 512u);
}

// -------------------------------------------------------------------- FT ---

TEST(Ft, FftMatchesReferenceDft) {
  std::vector<Complex> a(32);
  NpbRandom rng;
  for (auto& c : a) c = Complex(rng.next() - 0.5, rng.next() - 0.5);
  auto fft = a;
  fft1d(fft, false);
  const auto dft = dft_reference(a, false);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(std::abs(fft[i] - dft[i]), 0.0, 1e-10);
  }
}

TEST(Ft, InverseRoundTrip) {
  std::vector<Complex> a(64);
  NpbRandom rng(271828.0);
  for (auto& c : a) c = Complex(rng.next(), rng.next());
  auto b = a;
  fft1d(b, false);
  fft1d(b, true);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(std::abs(a[i] - b[i]), 0.0, 1e-12);
  }
}

TEST(Ft, ParsevalHolds) {
  std::vector<Complex> a(128);
  NpbRandom rng(99.0 * 1e6);
  for (auto& c : a) c = Complex(rng.next() - 0.5, rng.next() - 0.5);
  double time_energy = 0.0;
  for (const auto& c : a) time_energy += std::norm(c);
  fft1d(a, false);
  double freq_energy = 0.0;
  for (const auto& c : a) freq_energy += std::norm(c);
  EXPECT_NEAR(freq_energy, time_energy * 128.0, 1e-8 * freq_energy);
}

TEST(Ft, RejectsNonPowerOfTwo) {
  std::vector<Complex> a(12);
  EXPECT_THROW(fft1d(a, false), std::invalid_argument);
}

TEST(Ft, Fft3dRoundTrip) {
  Field3 f = make_ft_initial(8);
  const Field3 original = f;
  fft3d(f, false);
  fft3d(f, true);
  double max_err = 0.0;
  for (std::size_t i = 0; i < f.size(); ++i) {
    max_err = std::max(max_err, std::abs(f.raw()[i] - original.raw()[i]));
  }
  EXPECT_LT(max_err, 1e-12);
}

TEST(Ft, EvolutionDampsHighFrequencies) {
  // With growing t the field approaches its mean (zero-frequency mode).
  Field3 f = make_ft_initial(8);
  const auto result = run_ft(f, 3, 1e-2);
  ASSERT_EQ(result.checksums.size(), 3u);
  // The checksum magnitudes shrink toward the DC average as decay grows.
  // (DC survives, so they do not vanish.)
  EXPECT_TRUE(std::isfinite(result.checksums[2].real()));
}

TEST(Ft, ZeroDiffusivityIsIdentity) {
  Field3 f = make_ft_initial(8);
  auto copy = f;
  const auto r = run_ft(f, 1, 0.0);
  // evolve with alpha=0 == forward+inverse transform only.
  fft3d(copy, false);
  fft3d(copy, true);
  // checksum over unchanged field must match directly computed one.
  Complex expected(0.0, 0.0);
  for (std::size_t q = 1; q <= 1024; ++q) {
    expected += copy.raw()[(q * 5 + q * q * 3) % copy.size()];
  }
  expected /= 1024.0;
  EXPECT_NEAR(std::abs(r.checksums[0] - expected), 0.0, 1e-10);
}

// -------------------------------------------------------------------- IS ---

TEST(Is, OutputIsSorted) {
  const auto keys = make_is_keys(1 << 14, 1 << 10);
  const auto r = run_is(keys, 1 << 10);
  EXPECT_TRUE(std::is_sorted(r.sorted.begin(), r.sorted.end()));
}

TEST(Is, OutputIsAPermutation) {
  const auto keys = make_is_keys(1 << 14, 1 << 10);
  auto r = run_is(keys, 1 << 10);
  auto input_sorted = keys;
  std::sort(input_sorted.begin(), input_sorted.end());
  EXPECT_EQ(r.sorted, input_sorted);
}

TEST(Is, RanksPlaceEveryKeyCorrectly) {
  const auto keys = make_is_keys(1 << 12, 1 << 8);
  const auto r = run_is(keys, 1 << 8);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(r.sorted[r.ranks[i]], keys[i]);
  }
}

TEST(Is, RanksAreAPermutationOfIndices) {
  const auto keys = make_is_keys(1 << 12, 1 << 8);
  const auto r = run_is(keys, 1 << 8);
  std::vector<bool> seen(keys.size(), false);
  for (auto rank : r.ranks) {
    ASSERT_LT(rank, keys.size());
    EXPECT_FALSE(seen[rank]);
    seen[rank] = true;
  }
}

TEST(Is, KeyDistributionIsHumped) {
  // Average-of-four deviates: the middle half holds most of the mass.
  const std::uint32_t max_key = 1 << 10;
  const auto keys = make_is_keys(1 << 16, max_key);
  long middle = 0;
  for (auto k : keys) {
    if (k >= max_key / 4 && k < 3 * max_key / 4) ++middle;
  }
  EXPECT_GT(static_cast<double>(middle) / static_cast<double>(keys.size()), 0.85);
}

TEST(Is, RejectsOutOfRangeKeys) {
  EXPECT_THROW(run_is({5}, 4), std::invalid_argument);
  EXPECT_THROW(make_is_keys(8, 0), std::invalid_argument);
}

}  // namespace
}  // namespace maia::npb
