// Tests for the PCIe/DAPL fabric model: latency and bandwidth on the three
// intra-node paths under both software stacks (Figs 7-9) and the offload
// DMA transfer model (Fig 18).
#include <gtest/gtest.h>

#include "arch/registry.hpp"
#include "fabric/mpi_fabric.hpp"
#include "fabric/offload_link.hpp"
#include "sim/units.hpp"

namespace maia::fabric {
namespace {

using sim::operator""_B;
using sim::operator""_KiB;
using sim::operator""_MiB;

// ----------------------------------------------------------------- path ---

TEST(PathTest, DeviceMapping) {
  using arch::DeviceId;
  EXPECT_EQ(path_between(DeviceId::kHost, DeviceId::kPhi0), Path::kHostToPhi0);
  EXPECT_EQ(path_between(DeviceId::kPhi0, DeviceId::kHost), Path::kHostToPhi0);
  EXPECT_EQ(path_between(DeviceId::kHost, DeviceId::kPhi1), Path::kHostToPhi1);
  EXPECT_EQ(path_between(DeviceId::kPhi1, DeviceId::kPhi0), Path::kPhi0ToPhi1);
}

// ---------------------------------------------------------------- route ---

TEST(Route, PreUpdateAlwaysUsesCclDirect) {
  const MpiFabricModel pre(SoftwareStack::kPreUpdate);
  for (sim::Bytes s : {1_B, 8_KiB, 64_KiB, 1_MiB, 4_MiB}) {
    EXPECT_EQ(pre.route(s).provider, DaplProvider::kCclDirect) << s;
  }
}

TEST(Route, PostUpdateHasThreeStates) {
  // Paper §5: <=8 KB eager/CCL; <=256 KB rendezvous/CCL; >256 KB SCIF.
  const MpiFabricModel post(SoftwareStack::kPostUpdate);
  EXPECT_EQ(post.route(4_KiB).provider, DaplProvider::kCclDirect);
  EXPECT_EQ(post.route(4_KiB).protocol, Protocol::kEager);
  EXPECT_EQ(post.route(8_KiB).protocol, Protocol::kEager);
  EXPECT_EQ(post.route(9_KiB).protocol, Protocol::kRendezvousDirectCopy);
  EXPECT_EQ(post.route(64_KiB).provider, DaplProvider::kCclDirect);
  EXPECT_EQ(post.route(256_KiB).provider, DaplProvider::kCclDirect);
  EXPECT_EQ(post.route(257_KiB).provider, DaplProvider::kScif);
  EXPECT_EQ(post.route(4_MiB).provider, DaplProvider::kScif);
}

// -------------------------------------------------------------- latency ---

TEST(Latency, PreUpdateMatchesFig7) {
  const MpiFabricModel pre(SoftwareStack::kPreUpdate);
  EXPECT_NEAR(sim::to_microseconds(pre.latency(Path::kHostToPhi0)), 3.3, 0.01);
  EXPECT_NEAR(sim::to_microseconds(pre.latency(Path::kHostToPhi1)), 4.6, 0.01);
  EXPECT_NEAR(sim::to_microseconds(pre.latency(Path::kPhi0ToPhi1)), 6.3, 0.01);
}

TEST(Latency, PostUpdateMatchesFig7) {
  const MpiFabricModel post(SoftwareStack::kPostUpdate);
  EXPECT_NEAR(sim::to_microseconds(post.latency(Path::kHostToPhi0)), 3.3, 0.01);
  EXPECT_NEAR(sim::to_microseconds(post.latency(Path::kHostToPhi1)), 4.1, 0.01);
  EXPECT_NEAR(sim::to_microseconds(post.latency(Path::kPhi0ToPhi1)), 6.6, 0.01);
}

TEST(Latency, Phi1PathsAreSlowerThanPhi0) {
  // Paper: "latencies in the cases involving Phi1 are much higher".
  for (auto stack : {SoftwareStack::kPreUpdate, SoftwareStack::kPostUpdate}) {
    const MpiFabricModel m(stack);
    EXPECT_GT(m.latency(Path::kHostToPhi1), m.latency(Path::kHostToPhi0));
    EXPECT_GT(m.latency(Path::kPhi0ToPhi1), m.latency(Path::kHostToPhi1));
  }
}

// ------------------------------------------------------------ bandwidth ---

TEST(Bandwidth, PreUpdate4MiBMatchesFig8) {
  const MpiFabricModel pre(SoftwareStack::kPreUpdate);
  EXPECT_NEAR(pre.bandwidth(Path::kHostToPhi0, 4_MiB) / 1e9, 1.6, 0.1);
  EXPECT_NEAR(pre.bandwidth(Path::kHostToPhi1, 4_MiB) / 1e6, 455, 15);
  EXPECT_NEAR(pre.bandwidth(Path::kPhi0ToPhi1, 4_MiB) / 1e6, 444, 15);
}

TEST(Bandwidth, PostUpdate4MiBMatchesFig8) {
  const MpiFabricModel post(SoftwareStack::kPostUpdate);
  EXPECT_NEAR(post.bandwidth(Path::kHostToPhi0, 4_MiB) / 1e9, 6.0, 0.2);
  EXPECT_NEAR(post.bandwidth(Path::kHostToPhi1, 4_MiB) / 1e9, 6.0, 0.2);
  EXPECT_NEAR(post.bandwidth(Path::kPhi0ToPhi1, 4_MiB) / 1e6, 899, 25);
}

TEST(Bandwidth, PostUpdateRemovesPhi1Asymmetry) {
  // Pre-update: host-Phi0 is ~3.5x host-Phi1.  Post-update: symmetric.
  const MpiFabricModel pre(SoftwareStack::kPreUpdate);
  const MpiFabricModel post(SoftwareStack::kPostUpdate);
  const double pre_ratio = pre.bandwidth(Path::kHostToPhi0, 4_MiB) /
                           pre.bandwidth(Path::kHostToPhi1, 4_MiB);
  const double post_ratio = post.bandwidth(Path::kHostToPhi0, 4_MiB) /
                            post.bandwidth(Path::kHostToPhi1, 4_MiB);
  EXPECT_GT(pre_ratio, 3.0);
  EXPECT_NEAR(post_ratio, 1.0, 0.05);
}

TEST(Bandwidth, MonotonicInMessageSizeWithinAProvider) {
  for (auto stack : {SoftwareStack::kPreUpdate, SoftwareStack::kPostUpdate}) {
    const MpiFabricModel m(stack);
    for (auto path : {Path::kHostToPhi0, Path::kHostToPhi1, Path::kPhi0ToPhi1}) {
      // Across the SCIF switch there can be a step; within CCL it must rise.
      const auto curve = m.bandwidth_curve(path, 1_B, 256_KiB);
      EXPECT_TRUE(curve.is_non_decreasing(0.01))
          << stack_name(stack) << " " << path_name(path);
    }
  }
}

TEST(Bandwidth, NeverExceedsProviderCap) {
  const MpiFabricModel post(SoftwareStack::kPostUpdate);
  for (auto path : {Path::kHostToPhi0, Path::kHostToPhi1, Path::kPhi0ToPhi1}) {
    for (sim::Bytes s = 1; s <= 16_MiB; s *= 4) {
      EXPECT_LE(post.bandwidth(path, s), post.bandwidth_cap(path, s) * 1.0001);
    }
  }
}

TEST(Bandwidth, ZeroBytesIsZeroBandwidth) {
  const MpiFabricModel m(SoftwareStack::kPostUpdate);
  EXPECT_DOUBLE_EQ(m.bandwidth(Path::kHostToPhi0, 0), 0.0);
}

// ------------------------------------------------------------- Fig 9 ------

TEST(UpdateGain, SmallMessagesGainModestly) {
  // Paper: x1-1.5 for host-Phi0, x1-1.3 for host-Phi1 below 256 KB.
  const auto g0 = update_gain_curve(Path::kHostToPhi0, 1_B, 256_KiB);
  EXPECT_GE(g0.min_y(), 0.95);
  EXPECT_LE(g0.max_y(), 1.5);
  const auto g1 = update_gain_curve(Path::kHostToPhi1, 1_B, 256_KiB);
  EXPECT_GE(g1.min_y(), 0.95);
  EXPECT_LE(g1.max_y(), 1.35);
}

TEST(UpdateGain, ScifRegionGainsLarge) {
  // Paper: x2-3.8 host-Phi0 and x7-13 host-Phi1 for >= 256 KB messages.
  const auto g0 = update_gain_curve(Path::kHostToPhi0, 512_KiB, 4_MiB);
  EXPECT_GE(g0.min_y(), 2.0);
  EXPECT_LE(g0.max_y(), 3.9);
  const auto g1 = update_gain_curve(Path::kHostToPhi1, 512_KiB, 4_MiB);
  EXPECT_GE(g1.min_y(), 7.0);
  EXPECT_LE(g1.max_y(), 13.5);
}

TEST(UpdateGain, PeerToPeerDoublesForLargeAndDipsForSmall) {
  // Paper: P2P bandwidth decreased up to 8 KB, improved x1.8-2 at >=256 KB.
  const auto g = update_gain_curve(Path::kPhi0ToPhi1, 1_B, 4_MiB);
  EXPECT_LT(g.interpolate(4096), 1.0);
  EXPECT_NEAR(g.interpolate(static_cast<double>(4_MiB)), 2.0, 0.15);
}

// ------------------------------------------------------------- offload ---

TEST(Offload, LargeTransfersReach6Point4GBs) {
  const auto node = arch::maia_node();
  const OffloadLink link(node.pcie_phi0, Path::kHostToPhi0);
  EXPECT_NEAR(link.bandwidth(16_MiB) / 1e9, 6.4, 0.15);  // Fig 18
}

TEST(Offload, Phi1RunsAFewPercentBelowPhi0) {
  const auto node = arch::maia_node();
  const OffloadLink l0(node.pcie_phi0, Path::kHostToPhi0);
  const OffloadLink l1(node.pcie_phi1, Path::kHostToPhi1);
  const double ratio = l0.bandwidth(16_MiB) / l1.bandwidth(16_MiB);
  EXPECT_NEAR(ratio, 1.03, 0.01);  // paper: "about 3% higher"
}

TEST(Offload, DipAt64KiB) {
  const auto node = arch::maia_node();
  const OffloadLink link(node.pcie_phi0, Path::kHostToPhi0);
  // Fig 18: local fall at 64 KB, recovered by 128 KB.
  EXPECT_LT(link.bandwidth(64_KiB), link.bandwidth(32_KiB) * 1.10);
  EXPECT_GT(link.bandwidth(128_KiB), link.bandwidth(64_KiB) * 1.2);
}

TEST(Offload, BandwidthIsOtherwiseMonotonic) {
  const auto node = arch::maia_node();
  const OffloadLink link(node.pcie_phi0, Path::kHostToPhi0);
  const auto below = link.bandwidth_curve(1_KiB, 32_KiB);
  const auto above = link.bandwidth_curve(128_KiB, 16_MiB);
  EXPECT_TRUE(below.is_non_decreasing());
  EXPECT_TRUE(above.is_non_decreasing());
}

TEST(Offload, TransferTimeIncludesSetup) {
  const auto node = arch::maia_node();
  const OffloadLink link(node.pcie_phi0, Path::kHostToPhi0);
  EXPECT_GT(sim::to_microseconds(link.transfer_time(0)), 5.0);
}

TEST(Offload, PeakBelowTlpCeiling) {
  // The DMA engine cannot beat the 128 B-payload framing limit (6.9 GB/s).
  const auto node = arch::maia_node();
  const OffloadLink link(node.pcie_phi0, Path::kHostToPhi0);
  EXPECT_LT(link.peak_bandwidth(), node.pcie_phi0.effective_bandwidth(128));
}

}  // namespace
}  // namespace maia::fabric
