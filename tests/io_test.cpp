// Tests for the I/O model (Fig 17): NFS bandwidth on host vs through the
// MPSS virtual TCP/IP network on the Phis, and the host-forwarding
// workaround.
#include <gtest/gtest.h>

#include "arch/registry.hpp"
#include "io/io_model.hpp"
#include "sim/units.hpp"

namespace maia::io {
namespace {

using arch::DeviceId;
using sim::operator""_KiB;
using sim::operator""_MiB;

IoModel model() {
  return IoModel(arch::maia_node(), fabric::SoftwareStack::kPostUpdate);
}

TEST(Io, HostPeaksMatchFig17) {
  const auto m = model();
  EXPECT_NEAR(m.peak_bandwidth(DeviceId::kHost, IoDirection::kRead) / 1e6, 295, 5);
  EXPECT_NEAR(m.peak_bandwidth(DeviceId::kHost, IoDirection::kWrite) / 1e6, 210, 5);
}

TEST(Io, Phi0PeaksMatchFig17) {
  const auto m = model();
  EXPECT_NEAR(m.peak_bandwidth(DeviceId::kPhi0, IoDirection::kWrite) / 1e6, 80, 4);
  EXPECT_NEAR(m.peak_bandwidth(DeviceId::kPhi0, IoDirection::kRead) / 1e6, 75, 4);
}

TEST(Io, HostAdvantageRatios) {
  // Paper: write 2.6x, read 3.9x higher on host than Phi0.
  const auto m = model();
  const double wr = m.peak_bandwidth(DeviceId::kHost, IoDirection::kWrite) /
                    m.peak_bandwidth(DeviceId::kPhi0, IoDirection::kWrite);
  const double rd = m.peak_bandwidth(DeviceId::kHost, IoDirection::kRead) /
                    m.peak_bandwidth(DeviceId::kPhi0, IoDirection::kRead);
  EXPECT_NEAR(wr, 2.6, 0.2);
  EXPECT_NEAR(rd, 3.9, 0.3);
}

TEST(Io, PhiWriteBeatsPhiReadUnlikeHost) {
  // Fig 17's curious inversion: on the host read > write, on the Phi
  // write > read.
  const auto m = model();
  EXPECT_GT(m.peak_bandwidth(DeviceId::kHost, IoDirection::kRead),
            m.peak_bandwidth(DeviceId::kHost, IoDirection::kWrite));
  EXPECT_GT(m.peak_bandwidth(DeviceId::kPhi0, IoDirection::kWrite),
            m.peak_bandwidth(DeviceId::kPhi0, IoDirection::kRead));
}

TEST(Io, Phi1SlightlySlowerThanPhi0) {
  const auto m = model();
  EXPECT_LT(m.peak_bandwidth(DeviceId::kPhi1, IoDirection::kWrite),
            m.peak_bandwidth(DeviceId::kPhi0, IoDirection::kWrite));
}

TEST(Io, SmallBlocksArePenalized) {
  const auto m = model();
  EXPECT_LT(m.bandwidth(DeviceId::kPhi0, IoDirection::kWrite, 4_KiB),
            0.5 * m.peak_bandwidth(DeviceId::kPhi0, IoDirection::kWrite));
}

TEST(Io, BandwidthRisesMonotonicallyWithBlockSize) {
  const auto m = model();
  for (auto dev : {DeviceId::kHost, DeviceId::kPhi0}) {
    const auto curve =
        m.bandwidth_curve(dev, IoDirection::kWrite, 4_KiB, 64_MiB);
    EXPECT_TRUE(curve.is_non_decreasing());
  }
}

TEST(Io, ZeroBlockIsZero) {
  EXPECT_DOUBLE_EQ(model().bandwidth(DeviceId::kPhi0, IoDirection::kRead, 0), 0.0);
}

TEST(Io, ForwardingWorkaroundRestoresHostRates) {
  // Paper §6.6: ship data to a host rank over SCIF (6 GB/s at 4 MB
  // messages), write from the host — the NFS server becomes the limit.
  const auto m = model();
  const double fw = m.forwarded_bandwidth(DeviceId::kPhi0, IoDirection::kWrite);
  EXPECT_NEAR(fw / 1e6, 210, 5);
  EXPECT_GT(fw, 2.0 * m.peak_bandwidth(DeviceId::kPhi0, IoDirection::kWrite));
}

TEST(Io, ForwardingFromHostIsIdentity) {
  const auto m = model();
  EXPECT_DOUBLE_EQ(m.forwarded_bandwidth(DeviceId::kHost, IoDirection::kRead),
                   m.peak_bandwidth(DeviceId::kHost, IoDirection::kRead));
}

}  // namespace
}  // namespace maia::io
