// Tests for the batch prediction service: the ShardCache's LRU and
// backward-shift deletion, query canonicalization and cache keying, and
// the QueryEngine's determinism contract — sharded + cached evaluate()
// must be byte-identical to the naive serial loop, on randomized batches,
// under eviction pressure, and under concurrent batches from several
// threads sharing one engine and pool.
//
// Randomized cases seed from the logged, MAIA_TEST_SEED-overridable base
// seed (tests/test_seed.hpp), so any failure reproduces exactly.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <thread>
#include <vector>

#include "arch/registry.hpp"
#include "perf/signature.hpp"
#include "sim/thread_pool.hpp"
#include "svc/engine.hpp"
#include "svc/lru_cache.hpp"
#include "svc/query.hpp"
#include "test_seed.hpp"

namespace maia::svc {
namespace {

// ----------------------------------------------------------- ShardCache ---

CanonicalKey key(std::uint64_t hi, std::uint64_t lo = 0) { return {hi, lo}; }

QueryResult result(double v) {
  QueryResult r;
  r.value = v;
  return r;
}

TEST(ShardCacheTest, FindsInsertedEntries) {
  ShardCache cache(4);
  for (std::uint64_t i = 0; i < 4; ++i) {
    cache.insert(key(i), hash_key(key(i)), result(static_cast<double>(i)));
  }
  EXPECT_EQ(cache.size(), 4u);
  for (std::uint64_t i = 0; i < 4; ++i) {
    const QueryResult* r = cache.find(key(i), hash_key(key(i)));
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(r->value, static_cast<double>(i));
  }
  EXPECT_EQ(cache.find(key(99), hash_key(key(99))), nullptr);
  EXPECT_EQ(cache.evictions(), 0u);
}

TEST(ShardCacheTest, EvictsLeastRecentlyUsed) {
  ShardCache cache(4);
  for (std::uint64_t i = 0; i < 4; ++i) {
    cache.insert(key(i), hash_key(key(i)), result(static_cast<double>(i)));
  }
  // Touch key 0 so key 1 becomes the LRU entry.
  ASSERT_NE(cache.find(key(0), hash_key(key(0))), nullptr);
  cache.insert(key(4), hash_key(key(4)), result(4.0));
  EXPECT_EQ(cache.size(), 4u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.find(key(1), hash_key(key(1))), nullptr);  // evicted
  EXPECT_NE(cache.find(key(0), hash_key(key(0))), nullptr);  // saved by touch
  EXPECT_NE(cache.find(key(4), hash_key(key(4))), nullptr);
}

TEST(ShardCacheTest, EvictionStreamKeepsOnlyTheLastCapacityKeys) {
  constexpr std::size_t kCapacity = 8;
  ShardCache cache(kCapacity);
  constexpr std::uint64_t kTotal = 100;
  for (std::uint64_t i = 0; i < kTotal; ++i) {
    cache.insert(key(i), hash_key(key(i)), result(static_cast<double>(i)));
  }
  EXPECT_EQ(cache.size(), kCapacity);
  EXPECT_EQ(cache.evictions(), kTotal - kCapacity);
  for (std::uint64_t i = 0; i < kTotal; ++i) {
    const QueryResult* r = cache.find(key(i), hash_key(key(i)));
    if (i < kTotal - kCapacity) {
      EXPECT_EQ(r, nullptr) << "key " << i << " should have been evicted";
    } else {
      ASSERT_NE(r, nullptr) << "key " << i << " should be resident";
      EXPECT_EQ(r->value, static_cast<double>(i));
    }
  }
}

TEST(ShardCacheTest, BackwardShiftKeepsCollidingChainsReachable) {
  // All keys share one hash, so they form a single probe chain; evicting
  // from the middle of it exercises backward-shift compaction.  Every
  // find() must still resolve by key comparison alone.
  constexpr std::uint64_t kHash = 5;  // arbitrary; same for all entries
  ShardCache cache(4);
  for (std::uint64_t i = 0; i < 4; ++i) {
    cache.insert(key(i), kHash, result(static_cast<double>(i)));
  }
  // Touch 0 and 2; inserting two more evicts 1 then 3.
  ASSERT_NE(cache.find(key(0), kHash), nullptr);
  ASSERT_NE(cache.find(key(2), kHash), nullptr);
  cache.insert(key(4), kHash, result(4.0));
  cache.insert(key(5), kHash, result(5.0));
  EXPECT_EQ(cache.evictions(), 2u);
  EXPECT_EQ(cache.find(key(1), kHash), nullptr);
  EXPECT_EQ(cache.find(key(3), kHash), nullptr);
  for (const std::uint64_t i : {0ull, 2ull, 4ull, 5ull}) {
    const QueryResult* r = cache.find(key(i), kHash);
    ASSERT_NE(r, nullptr) << "key " << i << " lost after backward shift";
    EXPECT_EQ(r->value, static_cast<double>(i));
  }
}

TEST(ShardCacheTest, ClearResetsSizeAndEvictions) {
  ShardCache cache(2);
  for (std::uint64_t i = 0; i < 5; ++i) {
    cache.insert(key(i), hash_key(key(i)), result(static_cast<double>(i)));
  }
  EXPECT_GT(cache.evictions(), 0u);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.evictions(), 0u);
  EXPECT_EQ(cache.find(key(4), hash_key(key(4))), nullptr);
  cache.insert(key(7), hash_key(key(7)), result(7.0));
  EXPECT_NE(cache.find(key(7), hash_key(key(7))), nullptr);
}

// -------------------------------------------------- engine test fixtures ---

perf::KernelSignature test_kernel(double flops, double bytes) {
  perf::KernelSignature s;
  s.name = "svc-test";
  s.flops = flops;
  s.dram_bytes = bytes;
  s.vector_fraction = 0.9;
  return s;
}

/// An engine with two registered kernels (one compute-bound, one
/// memory-bound) over the paper's node.
QueryEngine make_engine(EngineConfig config = {}) {
  QueryEngine engine(arch::maia_node(), config);
  engine.register_kernel(test_kernel(1e11, 1e8));
  engine.register_kernel(test_kernel(1e9, 1e10));
  return engine;
}

/// A reproducible batch mixing all three query kinds, with out-of-range
/// fields and plenty of duplicates (small value pools) so canonicalization
/// and the caches both get exercised.
std::vector<Query> random_batch(std::uint32_t seed, std::size_t n) {
  std::mt19937 rng(seed);
  const arch::DeviceId devices[] = {arch::DeviceId::kHost, arch::DeviceId::kPhi0,
                                    arch::DeviceId::kPhi1};
  std::vector<Query> batch;
  batch.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    switch (rng() % 3) {
      case 0: {
        ExecQuery q;
        q.kernel = static_cast<std::uint16_t>(rng() % 3);  // 2 = out of range
        q.device = devices[rng() % 3];
        q.threads = static_cast<std::uint16_t>(rng() % 300);  // 0 and >max
        batch.push_back(Query::of(q));
        break;
      }
      case 1: {
        CollectiveQuery q;
        q.op = static_cast<CollectiveOp>(rng() % 10);
        q.device = devices[rng() % 3];
        q.ranks = static_cast<std::uint16_t>(rng() % 300);
        q.message_bytes = sim::Bytes{1} << (rng() % 20);  // 1 B .. 512 KiB
        q.stack = (rng() % 2) ? fabric::SoftwareStack::kPreUpdate
                              : fabric::SoftwareStack::kPostUpdate;
        batch.push_back(Query::of(q));
        break;
      }
      default: {
        LatencyQuery q;
        q.device = devices[rng() % 3];
        // Small pool of working sets: walks are the expensive queries.
        q.working_set = sim::Bytes{1024} << (rng() % 6);  // 1 KiB .. 32 KiB
        q.iterations = static_cast<std::uint16_t>(rng() % 3);  // 0 canonical-clamps
        batch.push_back(Query::of(q));
        break;
      }
    }
  }
  return batch;
}

// ------------------------------------------------------ canonicalization ---

TEST(QueryEngineTest, CanonicalizeClampsThreadsToHardwareContexts) {
  const QueryEngine engine = make_engine();
  const arch::NodeTopology node = arch::maia_node();
  const int host_max = node.device(arch::DeviceId::kHost).total_threads();

  ExecQuery lo;
  lo.threads = 0;
  ExecQuery one;
  one.threads = 1;
  EXPECT_EQ(engine.key_of(Query::of(lo)), engine.key_of(Query::of(one)));

  ExecQuery big;
  big.threads = 9999;
  ExecQuery max;
  max.threads = static_cast<std::uint16_t>(host_max);
  EXPECT_EQ(engine.key_of(Query::of(big)), engine.key_of(Query::of(max)));

  // Distinct in-range thread counts stay distinct.
  ExecQuery two = one;
  two.threads = 2;
  EXPECT_NE(engine.key_of(Query::of(one)), engine.key_of(Query::of(two)));
}

TEST(QueryEngineTest, CanonicalizeNormalizesIntraDeviceStack) {
  const QueryEngine engine = make_engine();
  CollectiveQuery q;
  q.op = CollectiveOp::kAllreduce;
  q.ranks = 16;
  q.message_bytes = 4096;
  q.stack = fabric::SoftwareStack::kPostUpdate;
  CollectiveQuery pre = q;
  pre.stack = fabric::SoftwareStack::kPreUpdate;
  // Intra-device collectives never touch the fabric: same key.
  EXPECT_EQ(engine.key_of(Query::of(q)), engine.key_of(Query::of(pre)));

  // kCrossP2P goes through the fabric, so its stack is identity.
  q.op = CollectiveOp::kCrossP2P;
  pre.op = CollectiveOp::kCrossP2P;
  EXPECT_NE(engine.key_of(Query::of(q)), engine.key_of(Query::of(pre)));
}

TEST(QueryEngineTest, CanonicalizeDropsBarrierPayload) {
  const QueryEngine engine = make_engine();
  CollectiveQuery a;
  a.op = CollectiveOp::kBarrier;
  a.ranks = 8;
  a.message_bytes = 64;
  CollectiveQuery b = a;
  b.message_bytes = 1 << 20;
  EXPECT_EQ(engine.key_of(Query::of(a)), engine.key_of(Query::of(b)));
}

TEST(QueryEngineTest, CanonicalizeFloorsLatencyFields) {
  const QueryEngine engine = make_engine();
  LatencyQuery a;
  a.working_set = 0;
  a.iterations = 0;
  LatencyQuery b;
  b.working_set = 128;
  b.iterations = 1;
  EXPECT_EQ(engine.key_of(Query::of(a)), engine.key_of(Query::of(b)));
}

TEST(QueryEngineTest, EquivalentQueriesGetIdenticalAnswers) {
  QueryEngine engine = make_engine();
  ExecQuery big;
  big.threads = 9999;
  ExecQuery max;
  max.threads = static_cast<std::uint16_t>(
      arch::maia_node().device(arch::DeviceId::kHost).total_threads());
  const std::vector<Query> pair = {Query::of(big), Query::of(max)};
  BatchResults out;
  engine.evaluate_serial(pair, out);
  EXPECT_EQ(out.values()[0], out.values()[1]);
  EXPECT_EQ(out.secondary()[0], out.secondary()[1]);
}

// ---------------------------------------------------------- determinism ---

TEST(QueryEngineTest, ShardedMatchesSerialOnRandomizedBatches) {
  for (const std::uint32_t salt : {1u, 2u, 3u}) {
    const std::uint32_t seed = test::case_seed(salt);
    QueryEngine engine = make_engine();
    const std::vector<Query> batch = random_batch(seed, 2000);
    BatchResults reference;
    engine.evaluate_serial(batch, reference);
    BatchResults sharded;
    sim::ThreadPool pool(4);
    engine.evaluate(batch, sharded, &pool);
    EXPECT_TRUE(sharded.bitwise_equal(reference)) << "seed " << seed;
  }
}

TEST(QueryEngineTest, ShardedMatchesSerialWithoutPool) {
  QueryEngine engine = make_engine();
  const std::vector<Query> batch = random_batch(test::case_seed(7), 1000);
  BatchResults reference;
  engine.evaluate_serial(batch, reference);
  BatchResults out;
  engine.evaluate(batch, out);  // no pool: serial sharded path
  EXPECT_TRUE(out.bitwise_equal(reference));
}

TEST(QueryEngineTest, EvictionPressureDoesNotChangeResults) {
  // Tiny caches: far fewer entries than distinct keys, so the engine
  // recomputes under constant eviction.  Answers must not change.
  EngineConfig config;
  config.shards = 2;
  config.cache_capacity_per_shard = 16;
  QueryEngine engine = make_engine(config);
  const std::vector<Query> batch = random_batch(test::case_seed(11), 3000);
  BatchResults reference;
  engine.evaluate_serial(batch, reference);
  BatchResults sharded;
  sim::ThreadPool pool(4);
  engine.evaluate(batch, sharded, &pool);
  EXPECT_TRUE(sharded.bitwise_equal(reference));
  EXPECT_GT(engine.stats().evictions, 0u);
}

TEST(QueryEngineTest, RepeatedEvaluationIsStableAcrossCacheStates) {
  // Same batch three times: cold cache, warm cache, cleared cache.  All
  // byte-identical — a hit replays exactly what a fresh compute produces.
  QueryEngine engine = make_engine();
  const std::vector<Query> batch = random_batch(test::case_seed(13), 1500);
  sim::ThreadPool pool(2);
  BatchResults cold, warm, cleared;
  engine.evaluate(batch, cold, &pool);
  engine.evaluate(batch, warm, &pool);
  engine.clear_cache();
  engine.evaluate(batch, cleared, &pool);
  EXPECT_TRUE(warm.bitwise_equal(cold));
  EXPECT_TRUE(cleared.bitwise_equal(cold));
}

// ---------------------------------------------------------------- stats ---

TEST(QueryEngineTest, StatsAccountEveryQuery) {
  QueryEngine engine = make_engine();
  const std::vector<Query> batch = random_batch(test::case_seed(17), 2000);
  BatchResults out;
  engine.evaluate(batch, out);
  const EngineStats first = engine.stats();
  EXPECT_EQ(first.queries, batch.size());
  EXPECT_EQ(first.cache_hits + first.cache_misses, first.queries);
  EXPECT_GT(first.cache_hits, 0u);  // duplicates guarantee repeats

  // A second pass over the same batch hits for every query.
  engine.evaluate(batch, out);
  const EngineStats second = engine.stats();
  EXPECT_EQ(second.queries, 2 * batch.size());
  EXPECT_EQ(second.cache_misses, first.cache_misses);

  engine.clear_cache();
  const EngineStats cleared = engine.stats();
  EXPECT_EQ(cleared.queries, 0u);
  EXPECT_EQ(cleared.hit_rate(), 0.0);
}

// ----------------------------------------------------- concurrent stress ---

TEST(QueryEngineTest, ConcurrentBatchesShareEngineAndPool) {
  QueryEngine engine = make_engine();
  sim::ThreadPool pool(4);
  const std::vector<Query> batch = random_batch(test::case_seed(23), 2000);
  BatchResults reference;
  engine.evaluate_serial(batch, reference);

  constexpr int kThreads = 4;
  constexpr int kRounds = 3;
  std::vector<BatchResults> results(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        engine.evaluate(batch, results[t], &pool);
      }
    });
  }
  for (auto& th : threads) th.join();

  for (int t = 0; t < kThreads; ++t) {
    EXPECT_TRUE(results[t].bitwise_equal(reference)) << "thread " << t;
  }
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.queries, static_cast<std::uint64_t>(kThreads) * kRounds *
                               batch.size());
  EXPECT_EQ(stats.cache_hits + stats.cache_misses, stats.queries);
}

}  // namespace
}  // namespace maia::svc
