// Tests for the batch prediction service: the ShardCache's LRU and
// backward-shift deletion, query canonicalization and cache keying, and
// the QueryEngine's determinism contract — sharded + cached evaluate()
// must be byte-identical to the naive serial loop, on randomized batches,
// under eviction pressure, and under concurrent batches from several
// threads sharing one engine and pool.
//
// Randomized cases seed from the logged, MAIA_TEST_SEED-overridable base
// seed (tests/test_seed.hpp), so any failure reproduces exactly.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "arch/registry.hpp"
#include "perf/signature.hpp"
#include "sim/thread_pool.hpp"
#include "svc/engine.hpp"
#include "svc/lru_cache.hpp"
#include "svc/query.hpp"
#include "test_seed.hpp"

namespace maia::svc {
namespace {

// ----------------------------------------------------------- ShardCache ---

CanonicalKey key(std::uint64_t hi, std::uint64_t lo = 0) { return {hi, lo}; }

QueryResult result(double v) {
  QueryResult r;
  r.value = v;
  return r;
}

/// find() with the result discarded: membership plus the LRU promotion.
bool touch_find(ShardCache& cache, const CanonicalKey& k, std::uint64_t hash) {
  QueryResult out;
  return cache.find(k, hash, out);
}

TEST(ShardCacheTest, FindsInsertedEntries) {
  ShardCache cache(4);
  for (std::uint64_t i = 0; i < 4; ++i) {
    cache.insert(key(i), hash_key(key(i)), result(static_cast<double>(i)));
  }
  EXPECT_EQ(cache.size(), 4u);
  for (std::uint64_t i = 0; i < 4; ++i) {
    QueryResult r;
    ASSERT_TRUE(cache.find(key(i), hash_key(key(i)), r));
    EXPECT_EQ(r.value, static_cast<double>(i));
  }
  QueryResult r;
  EXPECT_FALSE(cache.find(key(99), hash_key(key(99)), r));
  EXPECT_EQ(cache.evictions(), 0u);
}

TEST(ShardCacheTest, EvictsLeastRecentlyUsed) {
  ShardCache cache(4);
  for (std::uint64_t i = 0; i < 4; ++i) {
    cache.insert(key(i), hash_key(key(i)), result(static_cast<double>(i)));
  }
  // Touch key 0 so key 1 becomes the LRU entry.
  ASSERT_TRUE(touch_find(cache, key(0), hash_key(key(0))));
  cache.insert(key(4), hash_key(key(4)), result(4.0));
  EXPECT_EQ(cache.size(), 4u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_FALSE(touch_find(cache, key(1), hash_key(key(1))));  // evicted
  EXPECT_TRUE(touch_find(cache, key(0), hash_key(key(0))));   // saved by touch
  EXPECT_TRUE(touch_find(cache, key(4), hash_key(key(4))));
}

TEST(ShardCacheTest, EvictionStreamKeepsOnlyTheLastCapacityKeys) {
  constexpr std::size_t kCapacity = 8;
  ShardCache cache(kCapacity);
  constexpr std::uint64_t kTotal = 100;
  for (std::uint64_t i = 0; i < kTotal; ++i) {
    cache.insert(key(i), hash_key(key(i)), result(static_cast<double>(i)));
  }
  EXPECT_EQ(cache.size(), kCapacity);
  EXPECT_EQ(cache.evictions(), kTotal - kCapacity);
  for (std::uint64_t i = 0; i < kTotal; ++i) {
    QueryResult r;
    const bool found = cache.find(key(i), hash_key(key(i)), r);
    if (i < kTotal - kCapacity) {
      EXPECT_FALSE(found) << "key " << i << " should have been evicted";
    } else {
      ASSERT_TRUE(found) << "key " << i << " should be resident";
      EXPECT_EQ(r.value, static_cast<double>(i));
    }
  }
}

TEST(ShardCacheTest, BackwardShiftKeepsCollidingChainsReachable) {
  // All keys share one hash, so they form a single probe chain; evicting
  // from the middle of it exercises backward-shift compaction.  Every
  // find() must still resolve by key comparison alone.
  constexpr std::uint64_t kHash = 5;  // arbitrary; same for all entries
  ShardCache cache(4);
  for (std::uint64_t i = 0; i < 4; ++i) {
    cache.insert(key(i), kHash, result(static_cast<double>(i)));
  }
  // Touch 0 and 2; inserting two more evicts 1 then 3.
  ASSERT_TRUE(touch_find(cache, key(0), kHash));
  ASSERT_TRUE(touch_find(cache, key(2), kHash));
  cache.insert(key(4), kHash, result(4.0));
  cache.insert(key(5), kHash, result(5.0));
  EXPECT_EQ(cache.evictions(), 2u);
  EXPECT_FALSE(touch_find(cache, key(1), kHash));
  EXPECT_FALSE(touch_find(cache, key(3), kHash));
  for (const std::uint64_t i : {0ull, 2ull, 4ull, 5ull}) {
    QueryResult r;
    ASSERT_TRUE(cache.find(key(i), kHash, r))
        << "key " << i << " lost after backward shift";
    EXPECT_EQ(r.value, static_cast<double>(i));
  }
}

TEST(ShardCacheTest, ClearResetsSizeAndEvictions) {
  ShardCache cache(2);
  for (std::uint64_t i = 0; i < 5; ++i) {
    cache.insert(key(i), hash_key(key(i)), result(static_cast<double>(i)));
  }
  EXPECT_GT(cache.evictions(), 0u);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.evictions(), 0u);
  EXPECT_FALSE(touch_find(cache, key(4), hash_key(key(4))));
  cache.insert(key(7), hash_key(key(7)), result(7.0));
  EXPECT_TRUE(touch_find(cache, key(7), hash_key(key(7))));
}

TEST(ShardCacheTest, ProbeReadOnlyHitsAndMisses) {
  ShardCache cache(8);
  for (std::uint64_t i = 0; i < 8; ++i) {
    cache.insert(key(i), hash_key(key(i)),
                 result(static_cast<double>(i) * 0.5));
  }
  for (std::uint64_t i = 0; i < 8; ++i) {
    QueryResult r;
    const ShardCache::ProbeResult p =
        cache.probe_read_only(key(i), hash_key(key(i)), r);
    ASSERT_EQ(p.status, ShardCache::ProbeStatus::kHit);
    EXPECT_EQ(p.retries, 0u);  // no concurrent writer: first pass validates
    EXPECT_EQ(r.value, static_cast<double>(i) * 0.5);
  }
  QueryResult r;
  EXPECT_EQ(cache.probe_read_only(key(99), hash_key(key(99)), r).status,
            ShardCache::ProbeStatus::kMiss);
}

TEST(ShardCacheTest, ConstProbesDoNotPromote) {
  // find_const and probe_read_only must leave the recency order alone:
  // probing key 0 through both does not save it from eviction, while a
  // real find() (the locked, promoting probe) does save key 1.
  ShardCache cache(4);
  for (std::uint64_t i = 0; i < 4; ++i) {
    cache.insert(key(i), hash_key(key(i)), result(static_cast<double>(i)));
  }
  QueryResult r;
  ASSERT_TRUE(cache.find_const(key(0), hash_key(key(0)), r));
  ASSERT_EQ(cache.probe_read_only(key(0), hash_key(key(0)), r).status,
            ShardCache::ProbeStatus::kHit);
  ASSERT_TRUE(cache.find(key(1), hash_key(key(1)), r));
  cache.insert(key(4), hash_key(key(4)), result(4.0));  // evicts 0, not 1
  EXPECT_FALSE(cache.find_const(key(0), hash_key(key(0)), r));
  EXPECT_TRUE(cache.find_const(key(1), hash_key(key(1)), r));
}

TEST(ShardCacheTest, PromoteReordersAndReportsEvictedKeys) {
  ShardCache cache(4);
  for (std::uint64_t i = 0; i < 4; ++i) {
    cache.insert(key(i), hash_key(key(i)), result(static_cast<double>(i)));
  }
  EXPECT_TRUE(cache.promote(key(0), hash_key(key(0))));
  EXPECT_FALSE(cache.promote(key(42), hash_key(key(42))));  // never inserted
  cache.insert(key(4), hash_key(key(4)), result(4.0));      // evicts 1
  QueryResult r;
  EXPECT_TRUE(cache.find_const(key(0), hash_key(key(0)), r));
  EXPECT_FALSE(cache.find_const(key(1), hash_key(key(1)), r));
  EXPECT_FALSE(cache.promote(key(1), hash_key(key(1))));  // evicted: lost
}

TEST(ShardCacheTest, EpochOverflowWrapsSafely) {
  // The seqlock epoch is a free-running u64; park it two increments from
  // the wrap point and push a write through it.  Quiescent probes must
  // validate on both sides of the wrap.
  ShardCache cache(4);
  cache.insert(key(1), hash_key(key(1)), result(1.0));
  cache.set_epoch_for_test(~std::uint64_t{1});  // 0xfffffffffffffffe, even
  QueryResult r;
  EXPECT_EQ(cache.probe_read_only(key(1), hash_key(key(1)), r).status,
            ShardCache::ProbeStatus::kHit);
  cache.insert(key(2), hash_key(key(2)), result(2.0));  // odd: ~0, even: 0
  EXPECT_EQ(cache.epoch(), 0u);
  EXPECT_EQ(cache.probe_read_only(key(1), hash_key(key(1)), r).status,
            ShardCache::ProbeStatus::kHit);
  ASSERT_EQ(cache.probe_read_only(key(2), hash_key(key(2)), r).status,
            ShardCache::ProbeStatus::kHit);
  EXPECT_EQ(r.value, 2.0);
}

// The seqlock's actual guarantee, under the adversarial schedule: readers
// probing lock-free while a writer churns evictions at capacity never see
// a torn value.  Every cached result here is a pure function of its key,
// so any hit whose bytes disagree with f(key) is a consistency violation.
// Run under TSan (the CI sanitizer job) this also proves the probe path
// is race-free in the C++ memory model sense.
TEST(ShardCacheTest, SeqlockReadersNeverObserveTornValuesUnderChurn) {
  constexpr std::size_t kCapacity = 64;
  constexpr std::uint64_t kKeySpace = 256;  // 4x capacity: constant eviction
  const auto value_of = [](std::uint64_t i) {
    return static_cast<double>(i) * 1.5 + 0.25;
  };
  const auto secondary_of = [](std::uint64_t i) {
    return -static_cast<double>(i) - 0.5;
  };
  ShardCache cache(kCapacity);
  // Prefill to capacity so readers have resident keys from the first
  // probe, whatever the scheduler does to the writer thread.
  for (std::uint64_t i = 0; i < kCapacity; ++i) {
    QueryResult entry;
    entry.value = value_of(i);
    entry.secondary = secondary_of(i);
    entry.flags = static_cast<std::uint32_t>(i & 0xff);
    cache.insert(key(i), hash_key(key(i)), entry);
  }
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> torn{0};
  std::atomic<std::uint64_t> hits{0};

  // Quiescent phase first: every prefilled key must hit with exact bytes.
  // This pins the hits floor whatever the scheduler later does to the
  // writer (on a single hardware thread the readers can exhaust their
  // probe budget inside one of the writer's epoch brackets, seeing only
  // kRetry — a legal schedule, not a cache defect).
  for (std::uint64_t i = 0; i < kCapacity; ++i) {
    QueryResult r;
    ASSERT_EQ(cache.probe_read_only(key(i), hash_key(key(i)), r).status,
              ShardCache::ProbeStatus::kHit);
    ASSERT_EQ(r.value, value_of(i));
    hits.fetch_add(1, std::memory_order_relaxed);
  }

  std::thread writer([&] {
    std::mt19937_64 rng(test::case_seed(31));
    // Single writer: the external shard mutex is trivially held.
    for (std::uint64_t round = 0; !stop.load(std::memory_order_relaxed);
         ++round) {
      const std::uint64_t i = rng() % kKeySpace;
      QueryResult r;
      QueryResult entry;
      entry.value = value_of(i);
      entry.secondary = secondary_of(i);
      entry.flags = static_cast<std::uint32_t>(i & 0xff);
      if (!cache.find(key(i), hash_key(key(i)), r)) {
        cache.insert(key(i), hash_key(key(i)), entry);
      }
      if ((round & 0x3ff) == 0) cache.promote(key(i), hash_key(key(i)));
    }
  });

  constexpr int kReaders = 2;
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      std::mt19937_64 rng(test::case_seed(37) + static_cast<std::uint32_t>(t));
      for (int probes = 0; probes < 200000; ++probes) {
        const std::uint64_t i = rng() % kKeySpace;
        QueryResult r;
        const ShardCache::ProbeResult p =
            cache.probe_read_only(key(i), hash_key(key(i)), r);
        if (p.status == ShardCache::ProbeStatus::kRetry) {
          // Writer descheduled mid-bracket: yield it the core, as the
          // engine's locked fallback path effectively would.
          std::this_thread::yield();
          continue;
        }
        if (p.status != ShardCache::ProbeStatus::kHit) continue;
        hits.fetch_add(1, std::memory_order_relaxed);
        if (r.value != value_of(i) || r.secondary != secondary_of(i) ||
            r.flags != static_cast<std::uint32_t>(i & 0xff)) {
          torn.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& th : readers) th.join();
  stop.store(true, std::memory_order_relaxed);
  writer.join();

  EXPECT_EQ(torn.load(), 0u);
  EXPECT_GT(hits.load(), 0u);  // the schedule actually exercised hits
}

// -------------------------------------------------- engine test fixtures ---

perf::KernelSignature test_kernel(double flops, double bytes) {
  perf::KernelSignature s;
  s.name = "svc-test";
  s.flops = flops;
  s.dram_bytes = bytes;
  s.vector_fraction = 0.9;
  return s;
}

/// An engine with two registered kernels (one compute-bound, one
/// memory-bound) over the paper's node.
QueryEngine make_engine(EngineConfig config = {}) {
  QueryEngine engine(arch::maia_node(), config);
  engine.register_kernel(test_kernel(1e11, 1e8));
  engine.register_kernel(test_kernel(1e9, 1e10));
  return engine;
}

/// A reproducible batch mixing all three query kinds, with out-of-range
/// fields and plenty of duplicates (small value pools) so canonicalization
/// and the caches both get exercised.
std::vector<Query> random_batch(std::uint32_t seed, std::size_t n) {
  std::mt19937 rng(seed);
  const arch::DeviceId devices[] = {arch::DeviceId::kHost, arch::DeviceId::kPhi0,
                                    arch::DeviceId::kPhi1};
  std::vector<Query> batch;
  batch.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    switch (rng() % 3) {
      case 0: {
        ExecQuery q;
        q.kernel = static_cast<std::uint16_t>(rng() % 3);  // 2 = out of range
        q.device = devices[rng() % 3];
        q.threads = static_cast<std::uint16_t>(rng() % 300);  // 0 and >max
        batch.push_back(Query::of(q));
        break;
      }
      case 1: {
        CollectiveQuery q;
        q.op = static_cast<CollectiveOp>(rng() % 10);
        q.device = devices[rng() % 3];
        q.ranks = static_cast<std::uint16_t>(rng() % 300);
        q.message_bytes = sim::Bytes{1} << (rng() % 20);  // 1 B .. 512 KiB
        q.stack = (rng() % 2) ? fabric::SoftwareStack::kPreUpdate
                              : fabric::SoftwareStack::kPostUpdate;
        batch.push_back(Query::of(q));
        break;
      }
      default: {
        LatencyQuery q;
        q.device = devices[rng() % 3];
        // Small pool of working sets: walks are the expensive queries.
        q.working_set = sim::Bytes{1024} << (rng() % 6);  // 1 KiB .. 32 KiB
        q.iterations = static_cast<std::uint16_t>(rng() % 3);  // 0 canonical-clamps
        batch.push_back(Query::of(q));
        break;
      }
    }
  }
  return batch;
}

// ------------------------------------------------------ canonicalization ---

TEST(QueryEngineTest, CanonicalizeClampsThreadsToHardwareContexts) {
  const QueryEngine engine = make_engine();
  const arch::NodeTopology node = arch::maia_node();
  const int host_max = node.device(arch::DeviceId::kHost).total_threads();

  ExecQuery lo;
  lo.threads = 0;
  ExecQuery one;
  one.threads = 1;
  EXPECT_EQ(engine.key_of(Query::of(lo)), engine.key_of(Query::of(one)));

  ExecQuery big;
  big.threads = 9999;
  ExecQuery max;
  max.threads = static_cast<std::uint16_t>(host_max);
  EXPECT_EQ(engine.key_of(Query::of(big)), engine.key_of(Query::of(max)));

  // Distinct in-range thread counts stay distinct.
  ExecQuery two = one;
  two.threads = 2;
  EXPECT_NE(engine.key_of(Query::of(one)), engine.key_of(Query::of(two)));
}

TEST(QueryEngineTest, CanonicalizeNormalizesIntraDeviceStack) {
  const QueryEngine engine = make_engine();
  CollectiveQuery q;
  q.op = CollectiveOp::kAllreduce;
  q.ranks = 16;
  q.message_bytes = 4096;
  q.stack = fabric::SoftwareStack::kPostUpdate;
  CollectiveQuery pre = q;
  pre.stack = fabric::SoftwareStack::kPreUpdate;
  // Intra-device collectives never touch the fabric: same key.
  EXPECT_EQ(engine.key_of(Query::of(q)), engine.key_of(Query::of(pre)));

  // kCrossP2P goes through the fabric, so its stack is identity.
  q.op = CollectiveOp::kCrossP2P;
  pre.op = CollectiveOp::kCrossP2P;
  EXPECT_NE(engine.key_of(Query::of(q)), engine.key_of(Query::of(pre)));
}

TEST(QueryEngineTest, CanonicalizeDropsBarrierPayload) {
  const QueryEngine engine = make_engine();
  CollectiveQuery a;
  a.op = CollectiveOp::kBarrier;
  a.ranks = 8;
  a.message_bytes = 64;
  CollectiveQuery b = a;
  b.message_bytes = 1 << 20;
  EXPECT_EQ(engine.key_of(Query::of(a)), engine.key_of(Query::of(b)));
}

TEST(QueryEngineTest, CanonicalizeFloorsLatencyFields) {
  const QueryEngine engine = make_engine();
  LatencyQuery a;
  a.working_set = 0;
  a.iterations = 0;
  LatencyQuery b;
  b.working_set = 128;
  b.iterations = 1;
  EXPECT_EQ(engine.key_of(Query::of(a)), engine.key_of(Query::of(b)));
}

TEST(QueryEngineTest, EquivalentQueriesGetIdenticalAnswers) {
  QueryEngine engine = make_engine();
  ExecQuery big;
  big.threads = 9999;
  ExecQuery max;
  max.threads = static_cast<std::uint16_t>(
      arch::maia_node().device(arch::DeviceId::kHost).total_threads());
  const std::vector<Query> pair = {Query::of(big), Query::of(max)};
  BatchResults out;
  engine.evaluate_serial(pair, out);
  EXPECT_EQ(out.values()[0], out.values()[1]);
  EXPECT_EQ(out.secondary()[0], out.secondary()[1]);
}

// ---------------------------------------------------------- determinism ---

TEST(QueryEngineTest, ShardedMatchesSerialOnRandomizedBatches) {
  for (const std::uint32_t salt : {1u, 2u, 3u}) {
    const std::uint32_t seed = test::case_seed(salt);
    QueryEngine engine = make_engine();
    const std::vector<Query> batch = random_batch(seed, 2000);
    BatchResults reference;
    engine.evaluate_serial(batch, reference);
    BatchResults sharded;
    sim::ThreadPool pool(4);
    engine.evaluate(batch, sharded, &pool);
    EXPECT_TRUE(sharded.bitwise_equal(reference)) << "seed " << seed;
  }
}

TEST(QueryEngineTest, ShardedMatchesSerialWithoutPool) {
  QueryEngine engine = make_engine();
  const std::vector<Query> batch = random_batch(test::case_seed(7), 1000);
  BatchResults reference;
  engine.evaluate_serial(batch, reference);
  BatchResults out;
  engine.evaluate(batch, out);  // no pool: serial sharded path
  EXPECT_TRUE(out.bitwise_equal(reference));
}

TEST(QueryEngineTest, EvictionPressureDoesNotChangeResults) {
  // Tiny caches: far fewer entries than distinct keys, so the engine
  // recomputes under constant eviction.  Answers must not change.
  EngineConfig config;
  config.shards = 2;
  config.cache_capacity_per_shard = 16;
  QueryEngine engine = make_engine(config);
  const std::vector<Query> batch = random_batch(test::case_seed(11), 3000);
  BatchResults reference;
  engine.evaluate_serial(batch, reference);
  BatchResults sharded;
  sim::ThreadPool pool(4);
  engine.evaluate(batch, sharded, &pool);
  EXPECT_TRUE(sharded.bitwise_equal(reference));
  EXPECT_GT(engine.stats().evictions, 0u);
}

TEST(QueryEngineTest, RepeatedEvaluationIsStableAcrossCacheStates) {
  // Same batch three times: cold cache, warm cache, cleared cache.  All
  // byte-identical — a hit replays exactly what a fresh compute produces.
  QueryEngine engine = make_engine();
  const std::vector<Query> batch = random_batch(test::case_seed(13), 1500);
  sim::ThreadPool pool(2);
  BatchResults cold, warm, cleared;
  engine.evaluate(batch, cold, &pool);
  engine.evaluate(batch, warm, &pool);
  engine.clear_cache();
  engine.evaluate(batch, cleared, &pool);
  EXPECT_TRUE(warm.bitwise_equal(cold));
  EXPECT_TRUE(cleared.bitwise_equal(cold));
}

// ---------------------------------------------------------------- stats ---

TEST(QueryEngineTest, StatsAccountEveryQuery) {
  QueryEngine engine = make_engine();
  const std::vector<Query> batch = random_batch(test::case_seed(17), 2000);
  BatchResults out;
  engine.evaluate(batch, out);
  const EngineStats first = engine.stats();
  EXPECT_EQ(first.queries, batch.size());
  EXPECT_EQ(first.cache_hits + first.cache_misses, first.queries);
  EXPECT_GT(first.cache_hits, 0u);  // duplicates guarantee repeats

  // A second pass over the same batch hits for every query.
  engine.evaluate(batch, out);
  const EngineStats second = engine.stats();
  EXPECT_EQ(second.queries, 2 * batch.size());
  EXPECT_EQ(second.cache_misses, first.cache_misses);

  engine.clear_cache();
  const EngineStats cleared = engine.stats();
  EXPECT_EQ(cleared.queries, 0u);
  EXPECT_EQ(cleared.hit_rate(), 0.0);
}

TEST(QueryEngineTest, WarmHitPathAcquiresNoShardLocks) {
  // The tentpole acceptance check: after a warming pass, re-evaluating the
  // same batch is 100% cache hits and the hit path must take zero shard
  // mutexes — every answer comes off the seqlock read view.
  QueryEngine engine = make_engine();
  const std::vector<Query> batch = random_batch(test::case_seed(41), 2000);
  sim::ThreadPool pool(4);
  BatchResults out;
  engine.evaluate(batch, out, &pool);  // cold: misses take locks
  const EngineStats cold = engine.stats();
  EXPECT_GT(cold.lock_acquisitions, 0u);

  engine.evaluate(batch, out, &pool);  // warm: all hits
  const EngineStats warm = engine.stats();
  EXPECT_EQ(warm.lock_acquisitions, cold.lock_acquisitions)
      << "warm hits took a shard mutex";
  EXPECT_EQ(warm.lockfree_hits, cold.lockfree_hits + batch.size());
  EXPECT_EQ(warm.cache_misses, cold.cache_misses);
  EXPECT_EQ(warm.queries, 2 * batch.size());
}

TEST(QueryEngineTest, SnapshotWarmedRunIsAllLockFreeHits) {
  // Same acceptance check through the snapshot path: a fresh engine warmed
  // purely from a snapshot answers the whole batch without a single mutex
  // acquisition or miss.
  const std::string path = ::testing::TempDir() + "/svc_lockfree_warm.snap";
  const std::vector<Query> batch = random_batch(test::case_seed(43), 1500);
  QueryEngine warmer = make_engine();
  BatchResults out;
  warmer.evaluate(batch, out);
  ASSERT_TRUE(warmer.save_snapshot(path).ok());

  QueryEngine engine = make_engine();
  ASSERT_TRUE(engine.load_snapshot(path).ok());
  sim::ThreadPool pool(4);
  engine.evaluate(batch, out, &pool);
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.cache_misses, 0u);
  EXPECT_EQ(stats.lock_acquisitions, 0u);
  EXPECT_EQ(stats.lockfree_hits, batch.size());
  EXPECT_EQ(stats.hit_lock_acquisitions, 0u);
}

// ----------------------------------------------------- concurrent stress ---

TEST(QueryEngineTest, ConcurrentBatchesShareEngineAndPool) {
  QueryEngine engine = make_engine();
  sim::ThreadPool pool(4);
  const std::vector<Query> batch = random_batch(test::case_seed(23), 2000);
  BatchResults reference;
  engine.evaluate_serial(batch, reference);

  constexpr int kThreads = 4;
  constexpr int kRounds = 3;
  std::vector<BatchResults> results(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        engine.evaluate(batch, results[t], &pool);
      }
    });
  }
  for (auto& th : threads) th.join();

  for (int t = 0; t < kThreads; ++t) {
    EXPECT_TRUE(results[t].bitwise_equal(reference)) << "thread " << t;
  }
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.queries, static_cast<std::uint64_t>(kThreads) * kRounds *
                               batch.size());
  EXPECT_EQ(stats.cache_hits + stats.cache_misses, stats.queries);
}

TEST(QueryEngineTest, ConcurrentBatchesUnderEvictionPressureStayExact) {
  // The hard schedule for the lock-free read path: tiny caches force
  // continuous insert/evict churn in every shard while several threads run
  // lock-free hit sweeps over the same keys.  Byte-identity must survive
  // the races — a seqlock-retried or stale-miss probe may cost a lock,
  // never a wrong byte.
  EngineConfig config;
  config.shards = 4;
  config.cache_capacity_per_shard = 32;
  QueryEngine engine = make_engine(config);
  sim::ThreadPool pool(4);
  const std::vector<Query> batch = random_batch(test::case_seed(47), 3000);
  BatchResults reference;
  engine.evaluate_serial(batch, reference);

  constexpr int kThreads = 4;
  constexpr int kRounds = 3;
  std::vector<BatchResults> results(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        engine.evaluate(batch, results[t], &pool);
      }
    });
  }
  for (auto& th : threads) th.join();

  for (int t = 0; t < kThreads; ++t) {
    EXPECT_TRUE(results[t].bitwise_equal(reference)) << "thread " << t;
  }
  EXPECT_GT(engine.stats().evictions, 0u);
}

}  // namespace
}  // namespace maia::svc
