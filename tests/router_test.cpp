// Tests for the scale-out shard router (src/net/router, src/svc/sharding):
// consistent-hash shard-map properties, scatter/gather merge byte-identity
// against the serial engine, the calibration-fingerprint admission
// handshake, `--shard` range enforcement answering typed WRONG_SHARD,
// strict-mode advertisement validation, failover re-spray when a backend
// dies mid-fleet (and reconnect when it returns), offline snapshot
// partitioning, and a RouterPool drain-under-load soak (run under TSan in
// CI).
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "arch/registry.hpp"
#include "fault_transport.hpp"
#include "net/client.hpp"
#include "net/protocol.hpp"
#include "net/router.hpp"
#include "net/server.hpp"
#include "perf/signature.hpp"
#include "svc/engine.hpp"
#include "svc/sharding.hpp"
#include "svc/snapshot.hpp"
#include "test_seed.hpp"

namespace maia::net {
namespace {

// ------------------------------------------------------------- fixtures ---

perf::KernelSignature test_kernel(double flops, double bytes) {
  perf::KernelSignature s;
  s.name = "router-test";
  s.flops = flops;
  s.dram_bytes = bytes;
  s.vector_fraction = 0.9;
  return s;
}

svc::QueryEngine make_engine(bool extra_kernel = false) {
  svc::QueryEngine engine(arch::maia_node(), {});
  engine.register_kernel(test_kernel(1e11, 1e8));
  engine.register_kernel(test_kernel(1e9, 1e10));
  if (extra_kernel) engine.register_kernel(test_kernel(5e10, 5e9));
  return engine;
}

std::vector<svc::Query> random_batch(std::uint32_t seed, std::size_t n) {
  std::mt19937 rng(seed);
  const arch::DeviceId devices[] = {arch::DeviceId::kHost,
                                    arch::DeviceId::kPhi0,
                                    arch::DeviceId::kPhi1};
  std::vector<svc::Query> batch;
  batch.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    switch (rng() % 3) {
      case 0: {
        svc::ExecQuery q;
        q.kernel = static_cast<std::uint16_t>(rng() % 3);
        q.device = devices[rng() % 3];
        q.threads = static_cast<std::uint16_t>(rng() % 300);
        batch.push_back(svc::Query::of(q));
        break;
      }
      case 1: {
        svc::CollectiveQuery q;
        q.op = static_cast<svc::CollectiveOp>(rng() % 10);
        q.device = devices[rng() % 3];
        q.ranks = static_cast<std::uint16_t>(rng() % 300);
        q.message_bytes = sim::Bytes{1} << (rng() % 20);
        q.stack = (rng() % 2) ? fabric::SoftwareStack::kPreUpdate
                              : fabric::SoftwareStack::kPostUpdate;
        batch.push_back(svc::Query::of(q));
        break;
      }
      default: {
        svc::LatencyQuery q;
        q.device = devices[rng() % 3];
        q.working_set = sim::Bytes{1024} << (rng() % 6);
        q.iterations = static_cast<std::uint16_t>(rng() % 3);
        batch.push_back(svc::Query::of(q));
        break;
      }
    }
  }
  return batch;
}

std::string unique_socket_path() {
  static std::atomic<int> counter{0};
  return "/tmp/maia_router_test." + std::to_string(::getpid()) + "." +
         std::to_string(counter.fetch_add(1)) + ".sock";
}

/// RAII backend: a Server over its own engine on a unique socket path,
/// optionally shard-configured or deliberately calibration-divergent.
struct Backend {
  svc::QueryEngine engine;
  ServerConfig config;
  std::unique_ptr<Server> server;

  explicit Backend(int shard_index = 0, int shard_count = 0,
                   bool extra_kernel = false)
      : engine(make_engine(extra_kernel)) {
    config.socket_path = unique_socket_path();
    config.workers = 2;
    config.shard_index = shard_index;
    config.shard_count = shard_count;
    server = std::make_unique<Server>(engine, config);
    std::string error;
    EXPECT_TRUE(server->start(&error)) << error;
  }

  ~Backend() { drain(); ::unlink(config.socket_path.c_str()); }

  void drain() {
    if (server != nullptr && server->running()) {
      server->request_drain();
      server->wait();
    }
  }

  /// Bring the same socket path back up (reconnect tests).
  void restart() {
    drain();
    server = std::make_unique<Server>(engine, config);
    std::string error;
    ASSERT_TRUE(server->start(&error)) << error;
  }
};

RouterConfig config_for(std::initializer_list<const Backend*> backends) {
  RouterConfig config;
  for (const Backend* b : backends) {
    config.backends.push_back(b->config.socket_path);
  }
  return config;
}

// ------------------------------------------------------------ shard map ---

TEST(ShardMapTest, RangesPartitionTheHashSpace) {
  for (const std::size_t count : {1u, 2u, 3u, 5u, 8u, 13u, 240u}) {
    std::uint64_t expected_lo = 0;
    for (std::size_t i = 0; i < count; ++i) {
      const svc::ShardRange range = svc::shard_range(i, count);
      EXPECT_EQ(range.lo, expected_lo) << "gap before shard " << i << "/"
                                       << count;
      EXPECT_GE(range.hi, range.lo);
      // Boundary hashes land exactly where the range says they do.
      EXPECT_EQ(svc::shard_owner(range.lo, count), i);
      EXPECT_EQ(svc::shard_owner(range.hi, count), i);
      if (range.lo > 0) {
        EXPECT_EQ(svc::shard_owner(range.lo - 1, count), i - 1);
      }
      expected_lo = range.hi + 1;
    }
    EXPECT_EQ(svc::shard_range(count - 1, count).hi, ~0ull);
  }
}

TEST(ShardMapTest, OwnerAgreesWithRangeMembership) {
  std::mt19937_64 rng(7);
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t h = rng();
    for (const std::size_t count : {2u, 3u, 7u}) {
      const std::size_t owner = svc::shard_owner(h, count);
      ASSERT_LT(owner, count);
      EXPECT_TRUE(svc::in_shard(h, owner, count));
      const svc::ShardRange range = svc::shard_range(owner, count);
      EXPECT_GE(h, range.lo);
      EXPECT_LE(h, range.hi);
    }
  }
}

TEST(ShardMapTest, FailoverSpraySpreadsADeadRange) {
  // Keys from ONE dead shard's contiguous range must land on every
  // survivor after the remix, not pile up on a neighbour.
  constexpr std::size_t kCount = 3;
  const svc::ShardRange dead = svc::shard_range(1, kCount);
  std::vector<std::size_t> hits(kCount, 0);
  std::mt19937_64 rng(11);
  for (int i = 0; i < 30000; ++i) {
    const std::uint64_t h = dead.lo + rng() % (dead.hi - dead.lo);
    const std::uint64_t sprayed = svc::failover_spray(h);
    EXPECT_EQ(sprayed, svc::failover_spray(h)) << "spray must be deterministic";
    ++hits[svc::shard_owner(sprayed, kCount)];
  }
  for (std::size_t s = 0; s < kCount; ++s) {
    EXPECT_GT(hits[s], 30000 / (kCount * 4))
        << "shard " << s << " starved by the respray remix";
  }
}

// ----------------------------------------------------- scatter / gather ---

TEST(RouterTest, MergesByIndexIdenticalToSerial) {
  Backend b0, b1;
  svc::QueryEngine engine = make_engine();
  Router router(engine, config_for({&b0, &b1}));
  std::string error;
  ASSERT_TRUE(router.connect(&error)) << error;
  EXPECT_FALSE(router.strict_sharding());

  const std::vector<svc::Query> batch = random_batch(101, 3000);
  svc::BatchResults reference;
  engine.evaluate_serial(batch, reference);

  svc::BatchResults routed;
  ASSERT_EQ(router.evaluate(batch, routed), WireError::kOk);
  EXPECT_TRUE(routed.bitwise_equal(reference));

  // Both backends actually took traffic (3000 hashed keys cannot all land
  // in one half of the hash space).
  const RouterStats stats = router.stats();
  ASSERT_EQ(stats.backends.size(), 2u);
  EXPECT_GT(stats.backends[0].queries, 0u);
  EXPECT_GT(stats.backends[1].queries, 0u);
  EXPECT_EQ(stats.backends[0].queries + stats.backends[1].queries, 3000u);
  EXPECT_EQ(stats.resprayed, 0u);
  EXPECT_FALSE(stats.degraded);
}

TEST(RouterTest, EmptyAndSingleQueryBatches) {
  Backend b0, b1;
  svc::QueryEngine engine = make_engine();
  Router router(engine, config_for({&b0, &b1}));
  std::string error;
  ASSERT_TRUE(router.connect(&error)) << error;

  svc::BatchResults out;
  ASSERT_EQ(router.evaluate({}, out), WireError::kOk);
  EXPECT_EQ(out.size(), 0u);

  const std::vector<svc::Query> one = random_batch(5, 1);
  svc::BatchResults reference;
  engine.evaluate_serial(one, reference);
  ASSERT_EQ(router.evaluate(one, out), WireError::kOk);
  EXPECT_TRUE(out.bitwise_equal(reference));
}

TEST(RouterTest, SubBatchPipeliningPreservesOrder) {
  // Force many pipelined frames per backend: 8 queries per frame over a
  // 500-query batch exercises the id-matched gather path hard.
  Backend b0, b1;
  svc::QueryEngine engine = make_engine();
  RouterConfig config = config_for({&b0, &b1});
  config.max_subbatch = 8;
  Router router(engine, config);
  std::string error;
  ASSERT_TRUE(router.connect(&error)) << error;

  const std::vector<svc::Query> batch = random_batch(77, 500);
  svc::BatchResults reference;
  engine.evaluate_serial(batch, reference);
  svc::BatchResults routed;
  ASSERT_EQ(router.evaluate(batch, routed), WireError::kOk);
  EXPECT_TRUE(routed.bitwise_equal(reference));
}

// ------------------------------------------------- admission handshake ---

TEST(RouterTest, CalibrationMismatchRejectedAtAdmission) {
  Backend good(0, 0, /*extra_kernel=*/false);
  Backend diverged(0, 0, /*extra_kernel=*/true);
  ASSERT_NE(good.engine.calibration_hash(), diverged.engine.calibration_hash());

  svc::QueryEngine engine = make_engine();
  Router router(engine, config_for({&good, &diverged}));
  std::string error;
  EXPECT_FALSE(router.connect(&error));
  EXPECT_NE(error.find("calibration mismatch"), std::string::npos) << error;
}

// --------------------------------------------------- shard enforcement ---

TEST(RouterTest, ShardedServerAnswersWrongShardTyped) {
  Backend owner_of_one(1, 2);
  Client client;
  std::string error;
  ASSERT_TRUE(client.connect(owner_of_one.config.socket_path, &error)) << error;

  // Split a batch by the key range the server owns.
  const std::vector<svc::Query> batch = random_batch(42, 200);
  std::vector<svc::Query> in_range, out_of_range;
  for (const svc::Query& q : batch) {
    const std::uint64_t h = svc::hash_key(owner_of_one.engine.key_of(q));
    (svc::in_shard(h, 1, 2) ? in_range : out_of_range).push_back(q);
  }
  ASSERT_FALSE(in_range.empty());
  ASSERT_FALSE(out_of_range.empty());

  std::vector<WireResult> results;
  EXPECT_EQ(client.evaluate(in_range, results).error, WireError::kOk);
  EXPECT_EQ(results.size(), in_range.size());

  // A single foreign key poisons the whole batch with the typed code — a
  // routing bug must never be half-answered.
  std::vector<svc::Query> mixed = in_range;
  mixed.push_back(out_of_range.front());
  EXPECT_EQ(client.evaluate(mixed, results).error, WireError::kWrongShard);
  EXPECT_EQ(owner_of_one.server->stats().wrong_shard, 1u);
}

TEST(RouterTest, StrictShardPairRoutesWithoutWrongShard) {
  Backend s0(0, 2), s1(1, 2);
  svc::QueryEngine engine = make_engine();
  Router router(engine, config_for({&s0, &s1}));
  std::string error;
  ASSERT_TRUE(router.connect(&error)) << error;
  EXPECT_TRUE(router.strict_sharding());

  const std::vector<svc::Query> batch = random_batch(303, 2000);
  svc::BatchResults reference;
  engine.evaluate_serial(batch, reference);
  svc::BatchResults routed;
  ASSERT_EQ(router.evaluate(batch, routed), WireError::kOk);
  EXPECT_TRUE(routed.bitwise_equal(reference));

  // The router's scatter agreed with both servers' range enforcement.
  EXPECT_EQ(s0.server->stats().wrong_shard, 0u);
  EXPECT_EQ(s1.server->stats().wrong_shard, 0u);
}

TEST(RouterTest, StrictAdvertisementMustFormAPermutation) {
  {
    // Two backends claiming the same shard of 2: rejected.
    Backend a(0, 2), b(0, 2);
    svc::QueryEngine engine = make_engine();
    Router router(engine, config_for({&a, &b}));
    std::string error;
    EXPECT_FALSE(router.connect(&error));
    EXPECT_NE(error.find("shard"), std::string::npos) << error;
  }
  {
    // Mixing a sharded backend with an unsharded one: rejected.
    Backend a(0, 2), b;
    svc::QueryEngine engine = make_engine();
    Router router(engine, config_for({&a, &b}));
    std::string error;
    EXPECT_FALSE(router.connect(&error));
    EXPECT_NE(error.find("shard"), std::string::npos) << error;
  }
  {
    // A 2-shard fleet needs exactly 2 backends.
    Backend a(0, 3), b(1, 3);
    svc::QueryEngine engine = make_engine();
    Router router(engine, config_for({&a, &b}));
    std::string error;
    EXPECT_FALSE(router.connect(&error));
    EXPECT_NE(error.find("shard"), std::string::npos) << error;
  }
}

// -------------------------------------------------------------- failover ---

TEST(RouterTest, ReSpraysDeadBackendAndReconnects) {
  Backend b0, b1;
  svc::QueryEngine engine = make_engine();
  Router router(engine, config_for({&b0, &b1}));
  std::string error;
  ASSERT_TRUE(router.connect(&error)) << error;

  const std::vector<svc::Query> batch = random_batch(909, 1500);
  svc::BatchResults reference;
  engine.evaluate_serial(batch, reference);

  svc::BatchResults routed;
  ASSERT_EQ(router.evaluate(batch, routed), WireError::kOk);
  EXPECT_TRUE(routed.bitwise_equal(reference));
  EXPECT_FALSE(router.degraded());

  // Kill one backend; the batch must still complete, answered entirely by
  // the survivor, and the degradation must be visible.
  b1.drain();
  ASSERT_EQ(router.evaluate(batch, routed), WireError::kOk);
  EXPECT_TRUE(routed.bitwise_equal(reference));
  EXPECT_TRUE(router.degraded());
  EXPECT_GT(router.stats().resprayed, 0u);

  // Bring it back: the next batch reconnects and clears the degradation.
  b1.restart();
  ASSERT_EQ(router.evaluate(batch, routed), WireError::kOk);
  EXPECT_TRUE(routed.bitwise_equal(reference));
  EXPECT_FALSE(router.degraded());
  const RouterStats stats = router.stats();
  ASSERT_EQ(stats.backends.size(), 2u);
  EXPECT_GE(stats.backends[1].reconnects, 1u);
}

TEST(RouterTest, NoFailoverFailsTheBatchWithDraining) {
  Backend b0, b1;
  svc::QueryEngine engine = make_engine();
  RouterConfig config = config_for({&b0, &b1});
  config.allow_failover = false;
  Router router(engine, config);
  std::string error;
  ASSERT_TRUE(router.connect(&error)) << error;

  b1.drain();
  const std::vector<svc::Query> batch = random_batch(13, 800);
  svc::BatchResults routed;
  EXPECT_EQ(router.evaluate(batch, routed), WireError::kDraining);
}

// --------------------------------------------------- snapshot partition ---

TEST(PartitionSnapshotTest, ConservesRecordsWithinShardRanges) {
  svc::QueryEngine engine = make_engine();
  const std::vector<svc::Query> batch = random_batch(55, 2000);
  svc::BatchResults warm;
  engine.evaluate(batch, warm);

  const std::string dir =
      "/tmp/maia_router_test." + std::to_string(::getpid()) + ".part";
  const std::string full = dir + ".full";
  const svc::SnapshotSaveResult saved = engine.save_snapshot(full);
  ASSERT_TRUE(saved.ok());
  ASSERT_GT(saved.records, 0u);

  constexpr std::size_t kShards = 3;
  std::vector<std::string> out_paths;
  for (std::size_t s = 0; s < kShards; ++s) {
    out_paths.push_back(dir + "." + std::to_string(s));
  }
  const svc::PartitionResult split = svc::partition_snapshot(full, out_paths);
  ASSERT_TRUE(split.ok()) << svc::snapshot_error_name(split.error);
  EXPECT_EQ(split.records_in, saved.records);

  std::uint64_t sum = 0;
  for (std::size_t s = 0; s < kShards; ++s) {
    sum += split.records_per_shard[s];
    std::ifstream is(out_paths[s], std::ios::binary);
    ASSERT_TRUE(is.is_open());
    const svc::SnapshotReadResult shard =
        svc::read_snapshot(is, engine.calibration_hash());
    ASSERT_TRUE(shard.ok()) << svc::snapshot_error_name(shard.error);
    EXPECT_EQ(shard.records.size(), split.records_per_shard[s]);
    // Every record landed in the range that shard owns — the property the
    // `--shard` warm start depends on.
    for (const svc::SnapshotRecord& r : shard.records) {
      EXPECT_TRUE(svc::in_shard(svc::hash_key(r.key), s, kShards));
    }
  }
  EXPECT_EQ(sum, split.records_in);

  // A partitioned file is a valid warm start for a fresh engine.
  svc::QueryEngine warmed = make_engine();
  const svc::SnapshotLoadResult loaded = warmed.load_snapshot(out_paths[0]);
  EXPECT_TRUE(loaded.ok()) << svc::snapshot_error_name(loaded.error);
  EXPECT_EQ(loaded.records_loaded, split.records_per_shard[0]);

  std::remove(full.c_str());
  for (const std::string& p : out_paths) std::remove(p.c_str());
}

// ------------------------------------------------------------- pool soak ---

TEST(RouterPoolTest, DrainUnderLoadSoakStaysByteIdentical) {
  Backend b0, b1;
  svc::QueryEngine engine = make_engine();
  RouterPool pool(engine, config_for({&b0, &b1}), /*size=*/3);
  std::string error;
  ASSERT_TRUE(pool.connect_all(&error)) << error;

  constexpr int kThreads = 3;
  constexpr int kPostDrainIters = 6;
  std::vector<std::vector<svc::Query>> batches;
  std::vector<svc::BatchResults> references(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    batches.push_back(random_batch(1000 + static_cast<std::uint32_t>(t), 400));
    engine.evaluate_serial(batches.back(), references[t]);
  }

  // Every thread soaks until it has completed several batches AFTER the
  // backend kill below — so failover is guaranteed to be exercised, not
  // raced past on a fast machine.
  std::atomic<bool> backend_killed{false};
  std::atomic<int> divergences{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      svc::BatchResults out;
      for (int post = 0; post < kPostDrainIters;) {
        const WireError rc = pool.evaluate(batches[t], out, 0);
        if (rc != WireError::kOk) {
          failures.fetch_add(1);
        } else if (!out.bitwise_equal(references[t])) {
          divergences.fetch_add(1);
        }
        if (backend_killed.load(std::memory_order_acquire)) ++post;
      }
    });
  }
  // Kill one backend while the pool is mid-soak: every in-flight and
  // subsequent batch must still be answered, byte-identical, by failover.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  b0.drain();
  backend_killed.store(true, std::memory_order_release);
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(divergences.load(), 0);
  const RouterStats stats = pool.stats();
  EXPECT_TRUE(stats.degraded);
  EXPECT_GT(stats.resprayed, 0u);
  EXPECT_GE(stats.batches,
            static_cast<std::uint64_t>(kThreads) * kPostDrainIters);
}

// ----------------------------------------------------- admin frame plane ---

TEST(ServerAdminTest, ShardAssignReRangesALiveServer) {
  Backend backend;  // starts unsharded: serves the full hash range
  Client client;
  std::string error;
  ASSERT_TRUE(client.connect(backend.config.socket_path, &error)) << error;

  const std::vector<svc::Query> batch = random_batch(616, 300);
  std::vector<WireResult> results;
  ASSERT_EQ(client.evaluate(batch, results).error, WireError::kOk);

  // Re-range to shard 0 of 4 with NO restart: out-of-range keys now answer
  // the typed WRONG_SHARD, and the new range is advertised in stats.
  ASSERT_TRUE(client.shard_assign(0, 4));
  std::optional<WireStats> stats = client.stats();
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->shard_index, 0u);
  EXPECT_EQ(stats->shard_count, 4u);
  EXPECT_EQ(client.evaluate(batch, results).error, WireError::kWrongShard);

  // Revert to unsharded: the same batch serves again.
  ASSERT_TRUE(client.shard_assign(0, 0));
  stats = client.stats();
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->shard_count, 0u);
  ASSERT_EQ(client.evaluate(batch, results).error, WireError::kOk);
  EXPECT_EQ(backend.server->stats().shard_moves, 2u);
}

TEST(ServerAdminTest, SnapshotFetchInstallMovesWarmRecords) {
  Backend source, target;
  Client to_source, to_target;
  std::string error;
  ASSERT_TRUE(to_source.connect(source.config.socket_path, &error)) << error;
  ASSERT_TRUE(to_target.connect(target.config.socket_path, &error)) << error;

  // Warm the source through the wire, then lift its full-range image.
  const std::vector<svc::Query> batch = random_batch(627, 400);
  std::vector<WireResult> results;
  ASSERT_EQ(to_source.evaluate(batch, results).error, WireError::kOk);
  bool too_large = false;
  const std::optional<std::vector<std::uint8_t>> image =
      to_source.snapshot_fetch(0, ~0ull, &too_large);
  ASSERT_TRUE(image.has_value());
  ASSERT_FALSE(image->empty());

  // Install into the cold target: records land, and the identical batch
  // is then served from cache — bit-exact against the source's answers.
  const svc::EngineStats cold = target.engine.stats();
  const std::optional<std::uint64_t> loaded =
      to_target.snapshot_install(*image);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_GT(*loaded, 0u);

  std::vector<WireResult> from_target;
  ASSERT_EQ(to_target.evaluate(batch, from_target).error, WireError::kOk);
  ASSERT_EQ(from_target.size(), results.size());
  EXPECT_EQ(std::memcmp(from_target.data(), results.data(),
                        results.size() * sizeof(WireResult)),
            0);
  const svc::EngineStats warmed = target.engine.stats();
  EXPECT_EQ(warmed.cache_misses, cold.cache_misses)
      << "the installed records must serve every key without re-evaluating";
}

TEST(ServerAdminTest, OversizedSnapshotFetchAnswersTooLargeForBisect) {
  // A tiny response ceiling forces the typed TOO_LARGE answer on the full
  // range while a single-record range still fits — exactly the contract
  // the rebalance orchestrator's bisect loop relies on.
  svc::QueryEngine engine = make_engine();
  ServerConfig config;
  config.socket_path = unique_socket_path();
  config.workers = 1;
  config.snapshot_fetch_max_bytes = 256;
  Server server(engine, config);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  Client client;
  ASSERT_TRUE(client.connect(config.socket_path, &error)) << error;
  const std::vector<svc::Query> batch = random_batch(644, 300);
  std::vector<WireResult> results;
  ASSERT_EQ(client.evaluate(batch, results).error, WireError::kOk);

  bool too_large = false;
  EXPECT_FALSE(client.snapshot_fetch(0, ~0ull, &too_large).has_value());
  EXPECT_TRUE(too_large) << "full image above the ceiling must answer typed";

  // One key's exact hash: a singleton range fits under any sane ceiling.
  const std::uint64_t h = svc::hash_key(engine.key_of(batch.front()));
  too_large = false;
  const std::optional<std::vector<std::uint8_t>> one =
      client.snapshot_fetch(h, h, &too_large);
  EXPECT_TRUE(one.has_value()) << "singleton range must fit";
  EXPECT_FALSE(too_large);

  server.request_drain();
  server.wait();
  ::unlink(config.socket_path.c_str());
}

TEST(ServerAdminTest, RebalanceFrameWithoutHandlerIsBadType) {
  Backend backend;  // plain backend: no fleet to orchestrate
  Client client;
  std::string error;
  ASSERT_TRUE(client.connect(backend.config.socket_path, &error)) << error;
  RebalanceRequest req;
  req.backends = {"unix:/nowhere.a", "unix:/nowhere.b"};
  const std::optional<RebalanceReport> report = client.rebalance(req);
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->code, WireError::kBadType);
}

// -------------------------------------------------------- live rebalance ---

TEST(RebalanceTest, GrowTwoToThreeStreamsWarmRecordsByteIdentical) {
  Backend s0(0, 2), s1(1, 2);  // strict 2-shard fleet
  svc::QueryEngine engine = make_engine();
  RouterPool pool(engine, config_for({&s0, &s1}), /*size=*/2);
  std::string error;
  ASSERT_TRUE(pool.connect_all(&error)) << error;
  EXPECT_EQ(pool.epoch(), 0u);

  const std::vector<svc::Query> batch = random_batch(701, 1200);
  svc::BatchResults reference;
  engine.evaluate_serial(batch, reference);
  svc::BatchResults out;
  ASSERT_EQ(pool.evaluate(batch, out, 0), WireError::kOk);  // warms the fleet
  EXPECT_TRUE(out.bitwise_equal(reference));

  // Grow 2 -> 3: the new member joins cold and must come out warm.
  Backend s2;
  RebalanceRequest req;
  req.expect_old_count = 2;
  req.backends = {s0.config.socket_path, s1.config.socket_path,
                  s2.config.socket_path};
  const RebalanceReport report = pool.rebalance(req);
  ASSERT_TRUE(report.ok()) << wire_error_name(report.code);
  EXPECT_GT(report.moved_ranges, 0u);
  EXPECT_GT(report.records_streamed, 0u) << "warm records must move";
  EXPECT_EQ(report.epoch, 1u);
  EXPECT_EQ(pool.epoch(), 1u);

  // Byte-identity after the flip, with the new member serving its range
  // from the streamed cache: >= 90% hits on the moved ranges (it should
  // be 100% — every key was answered pre-flip).
  const svc::EngineStats before = s2.engine.stats();
  ASSERT_EQ(pool.evaluate(batch, out, 0), WireError::kOk);
  EXPECT_TRUE(out.bitwise_equal(reference));
  const svc::EngineStats after = s2.engine.stats();
  const std::uint64_t moved_queries = after.queries - before.queries;
  const std::uint64_t moved_hits = after.cache_hits - before.cache_hits;
  ASSERT_GT(moved_queries, 0u) << "the new member took no traffic";
  EXPECT_GE(moved_hits * 10, moved_queries * 9)
      << moved_hits << "/" << moved_queries
      << " hits on the moved ranges after the flip";

  // Strict enforcement followed the flip: nobody answered WRONG_SHARD,
  // and every member was re-ranged live.
  EXPECT_EQ(s0.server->stats().wrong_shard, 0u);
  EXPECT_EQ(s1.server->stats().wrong_shard, 0u);
  EXPECT_EQ(s2.server->stats().wrong_shard, 0u);
  EXPECT_GE(s0.server->stats().shard_moves, 1u);
  EXPECT_GE(s2.server->stats().shard_moves, 1u);
}

TEST(RebalanceTest, ShrinkThreeToTwoKeepsEveryKeyWarmAndServed) {
  Backend s0(0, 3), s1(1, 3), s2(2, 3);
  svc::QueryEngine engine = make_engine();
  RouterPool pool(engine, config_for({&s0, &s1, &s2}), /*size=*/2);
  std::string error;
  ASSERT_TRUE(pool.connect_all(&error)) << error;

  const std::vector<svc::Query> batch = random_batch(719, 1000);
  svc::BatchResults reference;
  engine.evaluate_serial(batch, reference);
  svc::BatchResults out;
  ASSERT_EQ(pool.evaluate(batch, out, 0), WireError::kOk);

  // Shrink 3 -> 2: the departing member's warm range must stream to the
  // survivors before it stops being routed to.
  RebalanceRequest req;
  req.expect_old_count = 3;
  req.backends = {s0.config.socket_path, s1.config.socket_path};
  const RebalanceReport report = pool.rebalance(req);
  ASSERT_TRUE(report.ok()) << wire_error_name(report.code);
  EXPECT_GT(report.records_streamed, 0u);
  EXPECT_EQ(pool.epoch(), 1u);

  ASSERT_EQ(pool.evaluate(batch, out, 0), WireError::kOk);
  EXPECT_TRUE(out.bitwise_equal(reference));
  EXPECT_EQ(s0.server->stats().wrong_shard, 0u);
  EXPECT_EQ(s1.server->stats().wrong_shard, 0u);
}

TEST(RebalanceTest, ContinuousTrafficSeesOnlyRetryLaterTransients) {
  Backend a0, a1;  // unsharded fleet (failover allowed)
  svc::QueryEngine engine = make_engine();
  RouterPool pool(engine, config_for({&a0, &a1}), /*size=*/3);
  std::string error;
  ASSERT_TRUE(pool.connect_all(&error)) << error;

  constexpr int kThreads = 3;
  std::vector<std::vector<svc::Query>> batches;
  std::vector<svc::BatchResults> references(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    batches.push_back(random_batch(730 + static_cast<std::uint32_t>(t), 350));
    engine.evaluate_serial(batches[t], references[t]);
  }
  svc::BatchResults warmup;
  for (int t = 0; t < kThreads; ++t) {
    ASSERT_EQ(pool.evaluate(batches[t], warmup, 0), WireError::kOk);
  }

  // Hammer the pool from all sides while the rebalance runs mid-soak.
  // Every response is either byte-identical or the typed RETRY_LATER
  // transient for a paused (mid-migration) range — nothing else.
  std::atomic<bool> stop{false};
  std::atomic<int> divergences{0};
  std::atomic<int> hard_failures{0};
  std::atomic<std::uint64_t> retry_transients{0};
  std::atomic<std::uint64_t> completed{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      svc::BatchResults out;
      while (!stop.load(std::memory_order_acquire)) {
        const WireError rc = pool.evaluate(batches[t], out, 0);
        if (rc == WireError::kOk) {
          completed.fetch_add(1);
          if (!out.bitwise_equal(references[t])) divergences.fetch_add(1);
        } else if (rc == WireError::kRetryLater) {
          retry_transients.fetch_add(1);
        } else {
          hard_failures.fetch_add(1);
        }
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  Backend a2;
  RebalanceRequest req;
  req.expect_old_count = 2;
  req.backends = {a0.config.socket_path, a1.config.socket_path,
                  a2.config.socket_path};
  const RebalanceReport report = pool.rebalance(req);
  // Let post-flip traffic soak before stopping.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  stop.store(true, std::memory_order_release);
  for (std::thread& t : threads) t.join();

  ASSERT_TRUE(report.ok()) << wire_error_name(report.code);
  EXPECT_EQ(pool.epoch(), 1u);
  EXPECT_EQ(divergences.load(), 0);
  EXPECT_EQ(hard_failures.load(), 0);
  EXPECT_GT(completed.load(), 0u);

  // And the fleet still answers byte-identical after the dust settles.
  svc::BatchResults out;
  ASSERT_EQ(pool.evaluate(batches[0], out, 0), WireError::kOk);
  EXPECT_TRUE(out.bitwise_equal(references[0]));
}

TEST(RebalanceTest, ValidationFailuresAbortWithTheOldTopologyIntact) {
  Backend s0(0, 2), s1(1, 2);
  svc::QueryEngine engine = make_engine();
  RouterPool pool(engine, config_for({&s0, &s1}), /*size=*/2);
  std::string error;
  ASSERT_TRUE(pool.connect_all(&error)) << error;

  const std::vector<svc::Query> batch = random_batch(747, 600);
  svc::BatchResults reference;
  engine.evaluate_serial(batch, reference);

  // Racing-admin guard: the expected old count does not match.
  RebalanceRequest stale;
  stale.expect_old_count = 5;
  stale.backends = {s0.config.socket_path, s1.config.socket_path,
                    unique_socket_path()};
  EXPECT_EQ(pool.rebalance(stale).code, WireError::kMalformed);

  // An unreachable target: refused BEFORE any live traffic is touched.
  RebalanceRequest unreachable;
  unreachable.expect_old_count = 2;
  unreachable.backends = {s0.config.socket_path, s1.config.socket_path,
                          unique_socket_path()};  // never bound
  EXPECT_FALSE(pool.rebalance(unreachable).ok());

  // An empty topology and a duplicate address: both refused.
  RebalanceRequest empty;
  EXPECT_EQ(pool.rebalance(empty).code, WireError::kMalformed);
  RebalanceRequest dup;
  dup.backends = {s0.config.socket_path, s0.config.socket_path};
  EXPECT_EQ(pool.rebalance(dup).code, WireError::kMalformed);

  // Nothing flipped, nothing paused: the old fleet serves byte-identical.
  EXPECT_EQ(pool.epoch(), 0u);
  svc::BatchResults out;
  ASSERT_EQ(pool.evaluate(batch, out, 0), WireError::kOk);
  EXPECT_TRUE(out.bitwise_equal(reference));
}

TEST(RebalanceTest, TargetDeathMidStreamAbortsAndOldFleetKeepsServing) {
  Backend s0(0, 2), s1(1, 2);
  svc::QueryEngine engine = make_engine();
  RouterPool pool(engine, config_for({&s0, &s1}), /*size=*/2);
  std::string error;
  ASSERT_TRUE(pool.connect_all(&error)) << error;

  // A big warm working set so the migration stream is far larger than the
  // admission handshake.
  const std::vector<svc::Query> batch = random_batch(761, 2500);
  svc::BatchResults reference;
  engine.evaluate_serial(batch, reference);
  svc::BatchResults out;
  ASSERT_EQ(pool.evaluate(batch, out, 0), WireError::kOk);

  // The new member sits behind a fault proxy armed to cut the connection
  // a few KB in: admission (a stats round-trip) survives, the snapshot
  // stream dies mid-install — exactly "target crashed during the move".
  Backend s2;
  test::FaultProxy::Config fault;
  fault.target = s2.config.socket_path;
  fault.seed = test::case_seed(0x4b1d);
  fault.max_chunk = 4096;
  test::FaultProxy proxy(fault);
  ASSERT_TRUE(proxy.start(&error)) << error;
  proxy.arm_kill_after(6000);

  RebalanceRequest req;
  req.expect_old_count = 2;
  req.backends = {s0.config.socket_path, s1.config.socket_path,
                  proxy.address()};
  const RebalanceReport report = pool.rebalance(req);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.code, WireError::kDraining)
      << wire_error_name(report.code);
  EXPECT_EQ(proxy.kills(), 1u) << "the stream was never cut";

  // Abort left the world exactly as it was: old epoch, old strict fleet,
  // no shard reassignment on the dead target, byte-identical service.
  EXPECT_EQ(pool.epoch(), 0u);
  EXPECT_EQ(s2.server->stats().shard_moves, 0u);
  ASSERT_EQ(pool.evaluate(batch, out, 0), WireError::kOk);
  EXPECT_TRUE(out.bitwise_equal(reference));
  proxy.stop();
}

TEST(RebalanceTest, StaleEpochRouterGetsWrongShardNeverRetried) {
  Backend s0(0, 2), s1(1, 2);
  svc::QueryEngine engine = make_engine();
  Router stale(engine, config_for({&s0, &s1}));
  std::string error;
  ASSERT_TRUE(stale.connect(&error)) << error;

  // The fleet re-ranges to a 3-way map behind the router's back (as if
  // another front flipped an epoch this router never saw).
  Client admin0, admin1;
  ASSERT_TRUE(admin0.connect(s0.config.socket_path, &error)) << error;
  ASSERT_TRUE(admin1.connect(s1.config.socket_path, &error)) << error;
  ASSERT_TRUE(admin0.shard_assign(0, 3));
  ASSERT_TRUE(admin1.shard_assign(1, 3));

  // The stale router still scatters by the 2-way map: some sub-batch hits
  // a key its target no longer owns.  WRONG_SHARD is a routing bug by
  // contract — the batch fails typed, with ZERO retry rounds burned.
  const std::vector<svc::Query> batch = random_batch(773, 800);
  svc::BatchResults out;
  EXPECT_EQ(stale.evaluate(batch, out), WireError::kWrongShard);
  const RouterStats stats = stale.stats();
  EXPECT_EQ(stats.retries, 0u) << "WRONG_SHARD must never be retried";
  EXPECT_GT(s0.server->stats().wrong_shard + s1.server->stats().wrong_shard,
            0u);
}

TEST(RebalanceTest, FrontServerAnswersRebalanceFramesEndToEnd) {
  // Full frame path: client -> front Server (kRebalance) -> RouterPool
  // orchestration -> kRebalanceDone, exactly how maia_router wires it.
  Backend s0(0, 2), s1(1, 2);
  svc::QueryEngine engine = make_engine();
  RouterPool pool(engine, config_for({&s0, &s1}), /*size=*/2);
  std::string error;
  ASSERT_TRUE(pool.connect_all(&error)) << error;

  ServerConfig front_config;
  front_config.socket_path = unique_socket_path();
  front_config.workers = 2;
  front_config.evaluator = [&pool](std::span<const svc::Query> queries,
                                   svc::BatchResults& out,
                                   std::uint32_t deadline_ms) {
    return pool.evaluate(queries, out, deadline_ms);
  };
  front_config.stats_augment = [&pool](WireStats& w) {
    pool.augment_stats(w);
  };
  front_config.rebalance = [&pool](const RebalanceRequest& r) {
    return pool.rebalance(r);
  };
  Server front(engine, front_config);
  ASSERT_TRUE(front.start(&error)) << error;

  Client client;
  ASSERT_TRUE(client.connect(front_config.socket_path, &error)) << error;
  const std::vector<svc::Query> batch = random_batch(787, 700);
  svc::BatchResults reference;
  engine.evaluate_serial(batch, reference);
  std::vector<WireResult> results;
  ASSERT_EQ(client.evaluate(batch, results).error, WireError::kOk);

  Backend s2;
  RebalanceRequest req;
  req.expect_old_count = 2;
  req.backends = {s0.config.socket_path, s1.config.socket_path,
                  s2.config.socket_path};
  const std::optional<RebalanceReport> report = client.rebalance(req);
  ASSERT_TRUE(report.has_value()) << "kRebalanceDone never arrived";
  ASSERT_TRUE(report->ok()) << wire_error_name(report->code);
  EXPECT_GT(report->records_streamed, 0u);
  EXPECT_EQ(report->epoch, 1u);

  // Same connection, same front: traffic flows byte-identical post-flip.
  ASSERT_EQ(client.evaluate(batch, results).error, WireError::kOk);
  ASSERT_EQ(results.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(std::memcmp(&results[i].value, &reference.values()[i], 8), 0)
        << "query " << i;
  }

  front.request_drain();
  EXPECT_EQ(front.wait(), 0);
  ::unlink(front_config.socket_path.c_str());
}

}  // namespace
}  // namespace maia::net
