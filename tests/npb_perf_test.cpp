// Figure-level behaviour of the NPB performance runners: Fig 19 (OpenMP),
// Fig 20 (MPI, with the FT out-of-memory wall), Fig 24 (loop collapse) and
// Figs 25-27 (MG offload modes).
#include <gtest/gtest.h>

#include "arch/registry.hpp"
#include "npb/mg_offload.hpp"
#include "npb/mpi_runner.hpp"
#include "npb/openmp_runner.hpp"
#include "npb/signatures.hpp"

namespace maia::npb {
namespace {

using arch::DeviceId;

OpenMpRunner omp_runner() { return OpenMpRunner(arch::maia_node()); }
MpiRunner mpi_runner() {
  return MpiRunner(arch::maia_node(), fabric::SoftwareStack::kPostUpdate);
}

// ------------------------------------------------------------- Fig 19 ------

TEST(NpbOpenMp, HostBeatsBestPhiForAllButMg) {
  // Paper: "Except for MG, most of the benchmarks have worse performance
  // on the Phi than on the host."
  const auto runner = omp_runner();
  for (Benchmark b : all_benchmarks()) {
    const double host = runner.best(b, DeviceId::kHost).gflops;
    const double phi = runner.best(b, DeviceId::kPhi0).gflops;
    if (b == Benchmark::kMG) {
      EXPECT_GT(phi, host) << benchmark_name(b);
    } else {
      EXPECT_GT(host, phi) << benchmark_name(b);
    }
  }
}

TEST(NpbOpenMp, BtHighestAndCgLowestOnPhi) {
  const auto runner = omp_runner();
  const double bt = runner.best(Benchmark::kBT, DeviceId::kPhi0).gflops;
  const double cg = runner.best(Benchmark::kCG, DeviceId::kPhi0).gflops;
  for (Benchmark b : all_benchmarks()) {
    if (b == Benchmark::kIS) continue;  // integer ops, different unit
    const double g = runner.best(b, DeviceId::kPhi0).gflops;
    EXPECT_LE(g, bt * 1.0001) << benchmark_name(b);
    EXPECT_GE(g, cg * 0.9999) << benchmark_name(b);
  }
}

TEST(NpbOpenMp, OneThreadPerCoreIsWorstOnPhi) {
  // "performance on Phi0 is minimal for 1 thread per core".
  const auto runner = omp_runner();
  for (Benchmark b : all_benchmarks()) {
    const auto sweep =
        runner.thread_sweep(b, DeviceId::kPhi0, OpenMpRunner::phi_thread_counts());
    for (std::size_t i = 1; i < sweep.size(); ++i) {
      EXPECT_GT(sweep[i].y, sweep[0].y)
          << benchmark_name(b) << " at " << sweep[i].x;
    }
  }
}

TEST(NpbOpenMp, ThreeThreadsPerCoreUsuallyBest) {
  // "...maximal for the 3 threads per core for most of the benchmarks."
  const auto runner = omp_runner();
  int best_at_three = 0;
  for (Benchmark b : all_benchmarks()) {
    const auto sweep =
        runner.thread_sweep(b, DeviceId::kPhi0, OpenMpRunner::phi_thread_counts());
    std::size_t best = 0;
    for (std::size_t i = 1; i < sweep.size(); ++i) {
      if (sweep[i].y > sweep[best].y) best = i;
    }
    if (sweep[best].x == 177) ++best_at_three;
  }
  EXPECT_GE(best_at_three, 5);
}

TEST(NpbOpenMp, MgMatchesPaperAbsolutes) {
  // The one figure with printed numbers: MG native host 23.5 Gflop/s at 16
  // threads (HT 32: 22.2), native Phi 29.9 at 177 threads.
  const auto runner = omp_runner();
  EXPECT_NEAR(runner.run(Benchmark::kMG, DeviceId::kHost, 16).gflops, 23.5, 1.5);
  const auto ht = runner.run(Benchmark::kMG, DeviceId::kHost, 32);
  EXPECT_NEAR(ht.gflops, 22.2, 1.5);
  const auto best = runner.best(Benchmark::kMG, DeviceId::kPhi0);
  EXPECT_NEAR(best.gflops, 29.9, 2.0);
  EXPECT_EQ(best.threads, 177);
}

TEST(NpbOpenMp, Phi0AndPhi1AreIdentical) {
  const auto runner = omp_runner();
  EXPECT_DOUBLE_EQ(runner.run(Benchmark::kBT, DeviceId::kPhi0, 177).gflops,
                   runner.run(Benchmark::kBT, DeviceId::kPhi1, 177).gflops);
}

// ------------------------------------------------------------- Fig 20 ------

TEST(NpbMpi, RankConstraintsMatchThePaper) {
  const auto runner = mpi_runner();
  EXPECT_EQ(runner.valid_rank_counts(Benchmark::kCG, DeviceId::kPhi0),
            (std::vector<int>{64, 128}));
  EXPECT_EQ(runner.valid_rank_counts(Benchmark::kBT, DeviceId::kPhi0),
            (std::vector<int>{64, 121, 169, 225}));
  EXPECT_EQ(runner.valid_rank_counts(Benchmark::kSP, DeviceId::kPhi0),
            (std::vector<int>{64, 121, 169, 225}));
}

TEST(NpbMpi, FtRunsOutOfMemoryOnPhiButNotHost) {
  // Paper: "The FT benchmark could not be run on Phi because the Phi
  // memory of 8GB is not enough, as it needs minimum of 10 GB."
  const auto runner = mpi_runner();
  EXPECT_TRUE(runner.run(Benchmark::kFT, DeviceId::kPhi0, 64).out_of_memory);
  EXPECT_TRUE(runner.run(Benchmark::kFT, DeviceId::kPhi0, 128).out_of_memory);
  EXPECT_FALSE(runner.run(Benchmark::kFT, DeviceId::kHost, 16).out_of_memory);
}

TEST(NpbMpi, EverythingElseRunsOnPhi) {
  const auto runner = mpi_runner();
  for (Benchmark b : all_benchmarks()) {
    if (b == Benchmark::kFT) continue;
    for (int ranks : runner.valid_rank_counts(b, DeviceId::kPhi0)) {
      EXPECT_FALSE(runner.run(b, DeviceId::kPhi0, ranks).out_of_memory)
          << benchmark_name(b) << " at " << ranks;
    }
  }
}

TEST(NpbMpi, BtPrefersFourRanksPerCore) {
  // Fig 20: "BT performance is best for 4 threads per core" (225 ranks).
  const auto runner = mpi_runner();
  const auto sweep = runner.rank_sweep(Benchmark::kBT, DeviceId::kPhi0);
  double best_x = 0, best_y = -1;
  for (const auto& p : sweep.points()) {
    if (p.y > best_y) {
      best_y = p.y;
      best_x = p.x;
    }
  }
  EXPECT_EQ(best_x, 225);
}

TEST(NpbMpi, HostStillWinsOverPhiMpi) {
  const auto runner = mpi_runner();
  for (Benchmark b : {Benchmark::kCG, Benchmark::kLU, Benchmark::kSP}) {
    const double host = runner.run(b, DeviceId::kHost, 16).gflops;
    double best_phi = 0;
    for (int ranks : runner.valid_rank_counts(b, DeviceId::kPhi0)) {
      best_phi = std::max(best_phi, runner.run(b, DeviceId::kPhi0, ranks).gflops);
    }
    EXPECT_GT(host, best_phi) << benchmark_name(b);
  }
}

TEST(NpbMpi, CommunicationCostsAreCharged) {
  const auto runner = mpi_runner();
  const auto r = runner.run(Benchmark::kCG, DeviceId::kPhi0, 128);
  EXPECT_GT(r.comm_seconds, 0.0);
  EXPECT_LT(r.comm_seconds, r.seconds);
}

// ------------------------------------------------------------- Fig 24 ------

TEST(LoopCollapse, HelpsPhiAndSlightlyHurtsHost) {
  // Paper: +25-28% on Phi0, -1% on the host at 16 threads.
  const auto runner = omp_runner();
  const auto plain = class_c_workload(Benchmark::kMG);
  const auto collapsed = class_c_mg_collapsed();

  // Gains compare wall time for the same useful work.
  const double host_gain =
      runner.run_workload(plain, DeviceId::kHost, 16).seconds /
      runner.run_workload(collapsed, DeviceId::kHost, 16).seconds;
  EXPECT_NEAR(host_gain, 0.99, 0.011);

  const double phi_gain_236 =
      runner.run_workload(plain, DeviceId::kPhi0, 236).seconds /
      runner.run_workload(collapsed, DeviceId::kPhi0, 236).seconds;
  EXPECT_GT(phi_gain_236, 1.20);
  EXPECT_LT(phi_gain_236, 1.45);

  for (int t : {59, 118, 177}) {
    const double gain = runner.run_workload(plain, DeviceId::kPhi0, t).seconds /
                        runner.run_workload(collapsed, DeviceId::kPhi0, t).seconds;
    EXPECT_GE(gain, 0.98) << t;
  }
}

TEST(LoopCollapse, Spilling60thCoreIsMuchWorse) {
  // Fig 24: 59/118/177/236 threads clearly beat 60/120/180/240.
  const auto runner = omp_runner();
  for (int tpc = 1; tpc <= 4; ++tpc) {
    const double on59 =
        runner.run(Benchmark::kMG, DeviceId::kPhi0, 59 * tpc).gflops;
    const double on60 =
        runner.run(Benchmark::kMG, DeviceId::kPhi0, 60 * tpc).gflops;
    EXPECT_GT(on59, 1.15 * on60) << tpc;
  }
}

// ---------------------------------------------------------- Figs 25-27 ------

TEST(MgOffload, NativeModesBeatAllOffloadVersions) {
  // Fig 25: "the performance of all the offload versions is much lower
  // than both native host and native Phi modes."
  const auto r = run_mg_modes();
  for (double g : r.offload_gflops) {
    EXPECT_LT(g, r.native_host_gflops);
    EXPECT_LT(g, r.native_phi_gflops);
  }
}

TEST(MgOffload, WholeComputationIsTheBestOffload) {
  const auto r = run_mg_modes();
  const double loop = r.offload_gflops[0];
  const double sub = r.offload_gflops[1];
  const double whole = r.offload_gflops[2];
  EXPECT_LT(loop, sub);
  EXPECT_LT(sub, whole);
}

TEST(MgOffload, OverheadOrderingMatchesFig26) {
  const auto r = run_mg_modes();
  EXPECT_GT(r.reports[0].overhead(), r.reports[1].overhead());
  EXPECT_GT(r.reports[1].overhead(), r.reports[2].overhead());
}

TEST(MgOffload, InvocationsAndBytesMatchFig27Ordering) {
  const auto r = run_mg_modes();
  EXPECT_GT(r.reports[0].invocations, r.reports[1].invocations);
  EXPECT_GT(r.reports[1].invocations, r.reports[2].invocations);
  EXPECT_GT(r.reports[0].total_bytes(), r.reports[1].total_bytes());
  EXPECT_GT(r.reports[1].total_bytes(), r.reports[2].total_bytes());
}

TEST(MgOffload, WholeComputationShipsInputOnce) {
  const auto prog = mg_offload_program(MgOffloadVersion::kWholeComputation);
  sim::Bytes in = 0;
  for (const auto& region : prog.regions) {
    in += static_cast<sim::Bytes>(region.invocations) * region.bytes_in;
  }
  // ~3.2 GB of initial grids plus per-step checksum traffic only.
  EXPECT_LT(in, sim::Bytes{3'300'000'000});
}

TEST(MgOffload, ReportsAccountTimeComponents) {
  const auto r = run_mg_modes();
  for (const auto& report : r.reports) {
    EXPECT_GT(report.transfer, 0.0);
    EXPECT_GT(report.phi_setup, 0.0);
    EXPECT_GT(report.phi_compute, 0.0);
    EXPECT_NEAR(report.total(),
                report.overhead() + report.phi_compute + report.host_compute,
                1e-12);
  }
}

}  // namespace
}  // namespace maia::npb
