// Tests for the extended IMB-style collective set (Reduce / Gather /
// Scatter — the paper's "one-to-all" and "all-to-one" categories, §3.3)
// and the strided-bandwidth model behind the paper's non-unit-stride
// warning (§4.3).
#include <gtest/gtest.h>

#include "arch/registry.hpp"
#include "memsim/bandwidth.hpp"
#include "mpi/collectives.hpp"
#include "sim/units.hpp"

namespace maia {
namespace {

using arch::DeviceId;
using sim::operator""_B;
using sim::operator""_KiB;
using sim::operator""_MiB;

mpi::Collectives coll() {
  return mpi::Collectives(
      mpi::MpiCostModel(arch::maia_node(), fabric::SoftwareStack::kPostUpdate));
}

TEST(Reduce, NeverCostsMoreThanAllreduce) {
  // Allreduce = reduce + redistribution: reduce can match (both are
  // log2(P) combine rounds for small payloads) but never exceed it.
  const auto c = coll();
  for (sim::Bytes s : {1_KiB, 256_KiB, 4_MiB}) {
    EXPECT_LE(c.reduce(DeviceId::kHost, 16, s).time,
              c.allreduce(DeviceId::kHost, 16, s).time * 1.0001) << s;
  }
}

TEST(Reduce, SwitchesToReduceScatterForLargePayloads) {
  const auto c = coll();
  EXPECT_EQ(c.reduce(DeviceId::kHost, 16, 1_KiB).algorithm,
            "binomial combine tree");
  EXPECT_EQ(c.reduce(DeviceId::kHost, 16, 1_MiB).algorithm,
            "reduce-scatter + gather");
}

TEST(Reduce, PhiPaysTheUsualPenalty) {
  const auto c = coll();
  EXPECT_GT(c.reduce(DeviceId::kPhi0, 59, 64_KiB).time,
            c.reduce(DeviceId::kHost, 16, 64_KiB).time);
}

TEST(Gather, RootFootprintCanExhaustTheCard) {
  const auto c = coll();
  // 236 ranks x 64 MB at the root > 8 GB card.
  EXPECT_TRUE(c.gather(DeviceId::kPhi0, 236, 64_MiB).out_of_memory);
  EXPECT_FALSE(c.gather(DeviceId::kPhi0, 236, 64_KiB).out_of_memory);
  EXPECT_FALSE(c.gather(DeviceId::kHost, 16, 64_MiB).out_of_memory);
}

TEST(Gather, TimeDominatedByTheLastDoublingRound) {
  const auto c = coll();
  const double t16 = c.gather(DeviceId::kHost, 16, 64_KiB).time;
  const double t8 = c.gather(DeviceId::kHost, 8, 64_KiB).time;
  // Halving the ranks roughly halves the root's receive volume.
  EXPECT_GT(t16, 1.5 * t8);
}

TEST(Scatter, MirrorsGatherCost) {
  const auto c = coll();
  for (sim::Bytes s : {1_KiB, 64_KiB}) {
    const double g = c.gather(DeviceId::kHost, 16, s).time;
    const double sc = c.scatter(DeviceId::kHost, 16, s).time;
    EXPECT_NEAR(sc / g, 1.0, 0.5) << s;
  }
}

TEST(Scatter, GrowsWithRankCount) {
  const auto c = coll();
  EXPECT_LT(c.scatter(DeviceId::kPhi0, 59, 16_KiB).time,
            c.scatter(DeviceId::kPhi0, 236, 16_KiB).time);
}

// ------------------------------------------------------------- strides ---

TEST(StridedAccess, UnitStrideIsFullBandwidth) {
  const mem::BandwidthModel m{arch::xeon_phi_5110p(), 1};
  EXPECT_DOUBLE_EQ(m.strided_read(64_MiB, 1), m.per_core_read(64_MiB));
}

TEST(StridedAccess, BandwidthCollapsesAsOneOverStride) {
  const mem::BandwidthModel m{arch::xeon_phi_5110p(), 1};
  const double unit = m.strided_read(64_MiB, 1);
  EXPECT_NEAR(m.strided_read(64_MiB, 2) / unit, 0.5, 1e-12);
  EXPECT_NEAR(m.strided_read(64_MiB, 4) / unit, 0.25, 1e-12);
  // One element per line is the floor.
  EXPECT_NEAR(m.strided_read(64_MiB, 8) / unit, 0.125, 1e-12);
  EXPECT_NEAR(m.strided_read(64_MiB, 64) / unit, 0.125, 1e-12);
}

TEST(StridedAccess, EightfoldLossDwarfsThePhiPerCoreRate) {
  // The paper's point: a 504 MB/s per-core rate at unit stride becomes
  // ~63 MB/s of useful data at stride 8 — "degrades dramatically".
  const mem::BandwidthModel m{arch::xeon_phi_5110p(), 1};
  EXPECT_LT(m.strided_read(64_MiB, 8), 70e6);
}

TEST(StridedAccess, DegenerateStrideClamps) {
  const mem::BandwidthModel m{arch::sandy_bridge_e5_2670(), 2};
  EXPECT_DOUBLE_EQ(m.strided_read(64_MiB, 0), m.strided_read(64_MiB, 1));
}

}  // namespace
}  // namespace maia
