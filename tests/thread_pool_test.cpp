// Stress and correctness tests for the concurrency layer: the worker
// pool, nested submission, exception propagation, parallel_for, and the
// move-only UniqueFunction it is all built on.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/thread_pool.hpp"
#include "sim/unique_function.hpp"

namespace maia::sim {
namespace {

// ------------------------------------------------------- UniqueFunction ---

TEST(UniqueFunctionTest, InvokesInlineAndHeapCallables) {
  UniqueFunction<int()> small([] { return 7; });
  EXPECT_EQ(small(), 7);

  // Force the heap path with a capture larger than the inline buffer.
  std::array<std::uint64_t, 16> fat{};
  fat.fill(3);
  UniqueFunction<int()> big([fat] {
    return static_cast<int>(std::accumulate(fat.begin(), fat.end(), 0ull));
  });
  EXPECT_EQ(big(), 48);
}

TEST(UniqueFunctionTest, AcceptsMoveOnlyCaptures) {
  auto p = std::make_unique<int>(5);
  UniqueFunction<int()> fn([p = std::move(p)] { return *p * 2; });
  UniqueFunction<int()> moved = std::move(fn);
  EXPECT_FALSE(static_cast<bool>(fn));  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(moved(), 10);
}

TEST(UniqueFunctionTest, DestroysNonTrivialCapturesOnce) {
  auto counter = std::make_shared<int>(0);
  {
    UniqueFunction<void()> fn([counter] {});
    UniqueFunction<void()> moved = std::move(fn);
    EXPECT_EQ(counter.use_count(), 2);
  }
  EXPECT_EQ(counter.use_count(), 1);
}

// ----------------------------------------------------------- ThreadPool ---

TEST(ThreadPoolTest, RunsManySmallTasks) {
  ThreadPool pool(4);
  std::atomic<int> sum{0};
  std::vector<std::future<void>> futures;
  futures.reserve(1000);
  for (int i = 0; i < 1000; ++i) {
    futures.push_back(pool.submit([&sum, i] {
      sum.fetch_add(i % 7, std::memory_order_relaxed);
    }));
  }
  for (auto& f : futures) f.get();
  int expected = 0;
  for (int i = 0; i < 1000; ++i) expected += i % 7;
  EXPECT_EQ(sum.load(), expected);
}

TEST(ThreadPoolTest, ReturnsValuesThroughFutures) {
  ThreadPool pool(2);
  auto a = pool.submit([] { return 21; });
  auto b = pool.submit([] { return std::string("phi"); });
  EXPECT_EQ(a.get(), 21);
  EXPECT_EQ(b.get(), "phi");
}

TEST(ThreadPoolTest, PropagatesTaskExceptions) {
  ThreadPool pool(2);
  auto poison = pool.submit([]() -> int {
    throw std::runtime_error("task failed");
  });
  EXPECT_THROW(poison.get(), std::runtime_error);
  // The pool must survive a throwing task and keep serving.
  EXPECT_EQ(pool.submit([] { return 1; }).get(), 1);
}

TEST(ThreadPoolTest, NestedSubmitsDoNotDeadlock) {
  ThreadPool pool(2);
  // Each outer task submits inner tasks and waits for them by helping —
  // with only two workers this deadlocks unless waiting threads execute
  // queued work.
  std::atomic<int> inner_done{0};
  std::vector<std::future<void>> outers;
  outers.reserve(4);
  for (int o = 0; o < 4; ++o) {
    outers.push_back(pool.submit([&inner_done] {
      parallel_for(8, [&inner_done](std::size_t) {
        inner_done.fetch_add(1, std::memory_order_relaxed);
      });
    }));
  }
  for (auto& f : outers) f.get();
  EXPECT_EQ(inner_done.load(), 32);
}

TEST(ThreadPoolTest, CurrentIsSetOnWorkersOnly) {
  EXPECT_EQ(ThreadPool::current(), nullptr);
  ThreadPool pool(1);
  auto seen = pool.submit([&pool] { return ThreadPool::current() == &pool; });
  EXPECT_TRUE(seen.get());
  EXPECT_EQ(ThreadPool::current(), nullptr);
}

// --------------------------------------------------------- parallel_for ---

TEST(ParallelForTest, RunsSeriallyWithoutAPool) {
  std::vector<int> out(64, 0);
  parallel_for(out.size(), [&out](std::size_t i) { out[i] = static_cast<int>(i); });
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], static_cast<int>(i));
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnceOnAPool) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  for (auto& h : hits) h.store(0);
  pool.submit([&hits] {
      parallel_for(hits.size(), [&hits](std::size_t i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
      });
    }).get();
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, RethrowsFirstExceptionAfterCompletion) {
  ThreadPool pool(2);
  std::atomic<int> completed{0};
  auto run = pool.submit([&completed] {
    parallel_for(16, [&completed](std::size_t i) {
      if (i == 3) throw std::invalid_argument("bad index");
      completed.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_THROW(run.get(), std::invalid_argument);
  EXPECT_EQ(completed.load(), 15);  // every other iteration still ran
}

TEST(ParallelForBlockedTest, PartitionsRangeIntoDisjointContiguousBlocks) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 10000;  // not a multiple of the block size
  constexpr std::size_t kBlock = 4096;
  std::vector<std::atomic<int>> hits(kN);
  for (auto& h : hits) h.store(0);
  std::atomic<int> blocks_seen{0};
  parallel_for_blocked(&pool, kN, kBlock,
                       [&](std::size_t b, std::size_t lo, std::size_t hi) {
                         EXPECT_EQ(lo, b * kBlock);
                         EXPECT_LE(hi, kN);
                         EXPECT_GT(hi, lo);
                         blocks_seen.fetch_add(1, std::memory_order_relaxed);
                         for (std::size_t i = lo; i < hi; ++i) {
                           hits[i].fetch_add(1, std::memory_order_relaxed);
                         }
                       });
  EXPECT_EQ(blocks_seen.load(), 3);  // ceil(10000 / 4096)
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForBlockedTest, ZeroBlockSizeDegradesToSingleIndexBlocks) {
  std::vector<int> out(17, 0);
  parallel_for_blocked(nullptr, out.size(), 0,
                       [&out](std::size_t b, std::size_t lo, std::size_t hi) {
                         EXPECT_EQ(lo, b);
                         EXPECT_EQ(hi, lo + 1);
                         out[lo] = static_cast<int>(lo) + 1;
                       });
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i) + 1);
  }
}

TEST(ParallelForTest, DeeplyNestedFanOutCompletes) {
  ThreadPool pool(3);
  std::atomic<int> leaves{0};
  pool.submit([&leaves] {
      parallel_for(4, [&leaves](std::size_t) {
        parallel_for(4, [&leaves](std::size_t) {
          leaves.fetch_add(1, std::memory_order_relaxed);
        });
      });
    }).get();
  EXPECT_EQ(leaves.load(), 16);
}

}  // namespace
}  // namespace maia::sim
