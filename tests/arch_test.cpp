// Unit tests for the hardware description layer: the factory processors
// must reproduce Table 1 of the paper and the architectural latencies the
// measured curves in Figs 5-6 rest on.
#include <gtest/gtest.h>

#include "arch/registry.hpp"
#include "sim/units.hpp"

namespace maia::arch {
namespace {

using sim::operator""_KiB;
using sim::operator""_MiB;
using sim::operator""_GiB;

// ------------------------------------------------------------- E5-2670 ---

TEST(SandyBridge, Table1Characteristics) {
  const auto p = sandy_bridge_e5_2670();
  EXPECT_EQ(p.num_cores, 8);
  EXPECT_DOUBLE_EQ(p.core.frequency_hz, 2.6e9);
  EXPECT_DOUBLE_EQ(p.core.turbo_frequency_hz, 3.2e9);
  EXPECT_EQ(p.core.hardware_threads, 2);
  EXPECT_TRUE(p.core.smt_optional);
  EXPECT_EQ(traits(p.core.isa).width_bits, 256);
}

TEST(SandyBridge, PeakPerformanceMatchesPaper) {
  const auto p = sandy_bridge_e5_2670();
  // Table 1: 20.8 Gflop/s per core, 166.4 Gflop/s per processor.
  EXPECT_NEAR(p.core.peak_flops(), 20.8e9, 1e6);
  EXPECT_NEAR(p.peak_flops(), 166.4e9, 1e7);
}

TEST(SandyBridge, CacheHierarchySizes) {
  const auto p = sandy_bridge_e5_2670();
  ASSERT_EQ(p.caches.size(), 3u);
  EXPECT_EQ(p.caches[0].capacity, 32_KiB);
  EXPECT_EQ(p.caches[1].capacity, 256_KiB);
  EXPECT_EQ(p.caches[2].capacity, 20_MiB);
  EXPECT_EQ(p.caches[2].scope, CacheScope::kShared);
}

TEST(SandyBridge, LoadLatenciesMatchMeasuredRegions) {
  const auto p = sandy_bridge_e5_2670();
  // Paper Fig 5: 1.5 / 4.6 / 15 / 81 ns.
  EXPECT_NEAR(sim::to_nanoseconds(p.load_latency(16_KiB)), 1.5, 0.2);
  EXPECT_NEAR(sim::to_nanoseconds(p.load_latency(128_KiB)), 4.6, 0.3);
  EXPECT_NEAR(sim::to_nanoseconds(p.load_latency(8_MiB)), 15.0, 0.5);
  EXPECT_NEAR(sim::to_nanoseconds(p.load_latency(64_MiB)), 81.0, 1.0);
}

TEST(SandyBridge, MemoryBandwidthPerSocket) {
  const auto p = sandy_bridge_e5_2670();
  EXPECT_NEAR(p.memory.raw_bandwidth(), 51.2e9, 1e6);  // Table 1
}

TEST(SandyBridge, OutOfOrderIssueSaturatesWithOneThread) {
  const auto p = sandy_bridge_e5_2670();
  EXPECT_DOUBLE_EQ(p.core.issue_efficiency(1), 1.0);
  EXPECT_DOUBLE_EQ(p.core.issue_efficiency(2), 1.0);
}

TEST(SandyBridge, HyperThreadingSlightlyHurtsThroughput) {
  const auto p = sandy_bridge_e5_2670();
  EXPECT_LT(p.core.smt_throughput_factor(2), 1.0);
  EXPECT_DOUBLE_EQ(p.core.smt_throughput_factor(1), 1.0);
}

// ----------------------------------------------------------- Phi 5110P ---

TEST(XeonPhi, Table1Characteristics) {
  const auto p = xeon_phi_5110p();
  EXPECT_EQ(p.num_cores, 60);
  EXPECT_DOUBLE_EQ(p.core.frequency_hz, 1.05e9);
  EXPECT_DOUBLE_EQ(p.core.turbo_frequency_hz, 0.0);
  EXPECT_EQ(p.core.hardware_threads, 4);
  EXPECT_FALSE(p.core.smt_optional);
  EXPECT_EQ(traits(p.core.isa).width_bits, 512);
  EXPECT_EQ(p.max_threads(), 240);
}

TEST(XeonPhi, PeakPerformanceMatchesPaper) {
  const auto p = xeon_phi_5110p();
  // Table 1: 16.8 Gflop/s per core, 1008 Gflop/s per coprocessor.
  EXPECT_NEAR(p.core.peak_flops(), 16.8e9, 1e6);
  EXPECT_NEAR(p.peak_flops(), 1008e9, 1e8);
}

TEST(XeonPhi, CacheHierarchyIsTwoLevel) {
  const auto p = xeon_phi_5110p();
  ASSERT_EQ(p.caches.size(), 2u);
  EXPECT_EQ(p.caches[0].capacity, 32_KiB);
  EXPECT_EQ(p.caches[1].capacity, 512_KiB);
}

TEST(XeonPhi, CachePerCoreRatioVsHostIs5x) {
  // Paper §6.2: total cache per core 544 KB vs 2.788 MB on the host,
  // a factor of 5.1.
  const auto host = sandy_bridge_e5_2670();
  const auto phi = xeon_phi_5110p();
  const double host_per_core = 32.0 + 256.0 + 20480.0 / 8.0;  // KB
  const double phi_per_core = 32.0 + 512.0;
  // (The paper quotes 5.1 using a 2.5 MB decimal L3 slice; the exact binary
  // arithmetic gives 5.24.)
  EXPECT_NEAR(host_per_core / phi_per_core, 5.1, 0.15);
  // And the models agree with that arithmetic.
  EXPECT_EQ(host.caches[0].capacity + host.caches[1].capacity +
                host.caches[2].capacity / 8,
            static_cast<sim::Bytes>(host_per_core * 1024));
  EXPECT_EQ(phi.caches[0].capacity + phi.caches[1].capacity,
            static_cast<sim::Bytes>(phi_per_core * 1024));
}

TEST(XeonPhi, LoadLatenciesMatchMeasuredRegions) {
  const auto p = xeon_phi_5110p();
  // Paper Fig 5: 2.9 / 22.9 / 295 ns.
  EXPECT_NEAR(sim::to_nanoseconds(p.load_latency(16_KiB)), 2.9, 0.2);
  EXPECT_NEAR(sim::to_nanoseconds(p.load_latency(256_KiB)), 22.9, 0.5);
  EXPECT_NEAR(sim::to_nanoseconds(p.load_latency(4_MiB)), 295.0, 2.0);
}

TEST(XeonPhi, MemorySystem) {
  const auto p = xeon_phi_5110p();
  EXPECT_NEAR(p.memory.raw_bandwidth(), 320e9, 1e6);  // 16ch x 4B x 5GT/s
  EXPECT_EQ(p.memory.open_banks, 128);                // 8 devices x 16 banks
  EXPECT_EQ(p.memory.capacity, 8_GiB);
}

TEST(XeonPhi, InOrderIssueNeedsTwoThreads) {
  const auto p = xeon_phi_5110p();
  EXPECT_DOUBLE_EQ(p.core.issue_efficiency(1), 0.5);
  EXPECT_DOUBLE_EQ(p.core.issue_efficiency(2), 1.0);
  EXPECT_DOUBLE_EQ(p.core.issue_efficiency(4), 1.0);
}

TEST(XeonPhi, OsReservedCoreLeaves59Usable) {
  const auto p = xeon_phi_5110p();
  EXPECT_EQ(p.usable_cores(), 59);
}

TEST(XeonPhi, LatencyGapVsHostMatchesPaperNarrative) {
  // The paper attributes Phi's application losses to higher latency and
  // lower per-core bandwidth.  Check the ordering relations.
  const auto host = sandy_bridge_e5_2670();
  const auto phi = xeon_phi_5110p();
  EXPECT_GT(phi.load_latency(64_MiB), 3.0 * host.load_latency(64_MiB));
  EXPECT_LT(phi.memory_read_bw_per_core, host.memory_read_bw_per_core / 10.0);
}

// ----------------------------------------------------------------- PCIe ---

TEST(PcieLink, Gen2RawBandwidthIs8GBs) {
  const PcieLinkParams link{"x16", PcieGen::kGen2, 16, 256, 20};
  EXPECT_NEAR(link.raw_bandwidth(), 8e9, 1e6);
}

TEST(PcieLink, PacketEfficiencyMatchesPaperArithmetic) {
  // Paper §6.7: 64 B payload + 20 B wrapping -> 76%; 128 B -> 86%,
  // i.e. 6.1 and 6.9 GB/s.
  const PcieLinkParams link{"x16", PcieGen::kGen2, 16, 256, 20};
  EXPECT_NEAR(link.packet_efficiency(64), 0.762, 0.005);
  EXPECT_NEAR(link.packet_efficiency(128), 0.865, 0.005);
  EXPECT_NEAR(link.effective_bandwidth(64), 6.1e9, 0.1e9);
  EXPECT_NEAR(link.effective_bandwidth(128), 6.9e9, 0.05e9);
}

TEST(PcieLink, PayloadClampsAtMax) {
  const PcieLinkParams link{"x16", PcieGen::kGen2, 16, 256, 20};
  EXPECT_DOUBLE_EQ(link.packet_efficiency(4096), link.packet_efficiency(256));
  EXPECT_DOUBLE_EQ(link.packet_efficiency(0), 0.0);
}

TEST(QpiLink, AggregateBandwidthMatchesPaper) {
  // Paper §2: each QPI link 8 GT/s x 2 bytes, two links -> 32 GB/s
  // aggregate (16 GB/s per direction x 2 links here).
  const QpiLinkParams qpi{"QPI", 8e9, 2, 2};
  EXPECT_NEAR(qpi.bandwidth(), 32e9, 1e6);
}

// ----------------------------------------------------------------- node ---

TEST(MaiaNode, DevicesAndMemory) {
  const auto node = maia_node();
  EXPECT_EQ(node.host.sockets, 2);
  EXPECT_EQ(node.host.total_cores(), 16);
  EXPECT_EQ(node.host.total_threads(), 32);
  EXPECT_EQ(node.phi0.total_threads(), 240);
  EXPECT_EQ(node.host.memory_capacity, 32_GiB);
  EXPECT_EQ(node.total_memory(), 48_GiB);
}

TEST(MaiaNode, PeakFlopsMatchTable1) {
  const auto node = maia_node();
  // 2 x 166.4 + 2 x 1008 Gflop/s.
  EXPECT_NEAR(node.host.peak_flops(), 332.8e9, 1e8);
  EXPECT_NEAR(node.peak_flops(), 2348.8e9, 1e9);
}

TEST(MaiaNode, DeviceLookup) {
  const auto node = maia_node();
  EXPECT_EQ(node.device(DeviceId::kPhi1).id, DeviceId::kPhi1);
  EXPECT_STREQ(device_name(DeviceId::kPhi0), "Phi0");
}

TEST(MaiaSystem, SystemPeaksMatchTable1) {
  const auto sys = maia_system();
  EXPECT_EQ(sys.nodes, 128);
  // Table 1 / §2: 42.6 Tflop/s host + 258 Tflop/s Phi ~= 301 Tflop/s.
  EXPECT_NEAR(sys.peak_flops() / 1e12, 301.0, 1.0);
  const double host_fraction =
      sys.node.host.peak_flops() / sys.node.peak_flops();
  EXPECT_NEAR(host_fraction, 0.14, 0.01);  // "% Flops 14 / 86"
}

TEST(MaiaSystem, Infiniband) {
  const auto sys = maia_system();
  EXPECT_NEAR(sys.node.hca.signalling_gbps, 56.0, 1e-9);
}

}  // namespace
}  // namespace maia::arch
