// Tests for the transport tier (src/net/transport) and the network-fault
// harness (tests/fault_transport.hpp): address-scheme parsing, typed
// bind/dial failures (EADDRINUSE, connection-refused), TCP vs unix-socket
// byte-identity against the serial engine, the golden wire fixture pinning
// protocol v1's on-disk frame layout, fault-injection round trips
// (partial delivery, stream corruption, kill-mid-frame), and a TCP
// loopback drain-under-load soak.  Runs under TSan in CI.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "arch/registry.hpp"
#include "fault_transport.hpp"
#include "net/client.hpp"
#include "net/protocol.hpp"
#include "net/server.hpp"
#include "net/transport.hpp"
#include "perf/signature.hpp"
#include "svc/engine.hpp"
#include "test_seed.hpp"

namespace maia::net {
namespace {

// ------------------------------------------------------------- fixtures ---

perf::KernelSignature test_kernel(double flops, double bytes) {
  perf::KernelSignature s;
  s.name = "transport-test";
  s.flops = flops;
  s.dram_bytes = bytes;
  s.vector_fraction = 0.9;
  return s;
}

svc::QueryEngine make_engine() {
  svc::QueryEngine engine(arch::maia_node(), {});
  engine.register_kernel(test_kernel(1e11, 1e8));
  engine.register_kernel(test_kernel(1e9, 1e10));
  return engine;
}

std::vector<svc::Query> random_batch(std::uint32_t seed, std::size_t n) {
  std::mt19937 rng(seed);
  const arch::DeviceId devices[] = {arch::DeviceId::kHost,
                                    arch::DeviceId::kPhi0,
                                    arch::DeviceId::kPhi1};
  std::vector<svc::Query> batch;
  batch.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    switch (rng() % 3) {
      case 0: {
        svc::ExecQuery q;
        q.kernel = static_cast<std::uint16_t>(rng() % 2);
        q.device = devices[rng() % 3];
        q.threads = static_cast<std::uint16_t>(rng() % 300);
        batch.push_back(svc::Query::of(q));
        break;
      }
      case 1: {
        svc::CollectiveQuery q;
        q.op = static_cast<svc::CollectiveOp>(rng() % 10);
        q.device = devices[rng() % 3];
        q.ranks = static_cast<std::uint16_t>(rng() % 300);
        q.message_bytes = sim::Bytes{1} << (rng() % 20);
        q.stack = (rng() % 2) ? fabric::SoftwareStack::kPreUpdate
                              : fabric::SoftwareStack::kPostUpdate;
        batch.push_back(svc::Query::of(q));
        break;
      }
      default: {
        svc::LatencyQuery q;
        q.device = devices[rng() % 3];
        q.working_set = sim::Bytes{1024} << (rng() % 6);
        q.iterations = static_cast<std::uint16_t>(rng() % 3);
        batch.push_back(svc::Query::of(q));
        break;
      }
    }
  }
  return batch;
}

std::string unique_socket_path() {
  static std::atomic<int> counter{0};
  return "/tmp/maia_transport_test." + std::to_string(::getpid()) + "." +
         std::to_string(counter.fetch_add(1)) + ".sock";
}

/// A loopback TCP port the kernel considers free right now.  The classic
/// pick-then-bind race is absorbed by the callers' retry loops (and
/// bind_listen's SO_REUSEADDR).
std::uint16_t pick_free_tcp_port() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in sin{};
  sin.sin_family = AF_INET;
  sin.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  sin.sin_port = 0;
  EXPECT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&sin), sizeof(sin)), 0);
  socklen_t len = sizeof(sin);
  EXPECT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&sin), &len), 0);
  const std::uint16_t port = ntohs(sin.sin_port);
  ::close(fd);
  return port;
}

/// RAII server on an arbitrary transport address (unix path or TCP
/// loopback); TCP construction retries fresh ports to absorb pick races.
struct ServerOn {
  svc::QueryEngine engine;
  ServerConfig config;
  std::unique_ptr<Server> server;

  explicit ServerOn(bool tcp) : engine(make_engine()) {
    config.workers = 2;
    std::string error;
    for (int attempt = 0; attempt < 5; ++attempt) {
      config.socket_path =
          tcp ? "tcp:127.0.0.1:" + std::to_string(pick_free_tcp_port())
              : unique_socket_path();
      server = std::make_unique<Server>(engine, config);
      if (server->start(&error)) return;
    }
    ADD_FAILURE() << "server failed to start: " << error;
    server.reset();
  }

  ~ServerOn() {
    if (server != nullptr && server->running()) {
      server->request_drain();
      server->wait();
    }
  }
};

// -------------------------------------------------------- address parse ---

TEST(AddressParseTest, AcceptsAllThreeSchemes) {
  Address a;
  ASSERT_TRUE(parse_address("unix:/tmp/x.sock", a));
  EXPECT_EQ(a.kind, Address::Kind::kUnix);
  EXPECT_EQ(a.path, "/tmp/x.sock");
  EXPECT_EQ(a.spec, "unix:/tmp/x.sock");
  EXPECT_FALSE(a.is_tcp());

  ASSERT_TRUE(parse_address("/tmp/bare.sock", a));
  EXPECT_EQ(a.kind, Address::Kind::kUnix);
  EXPECT_EQ(a.path, "/tmp/bare.sock");
  EXPECT_EQ(a.spec, "unix:/tmp/bare.sock");

  ASSERT_TRUE(parse_address("relative.sock", a));
  EXPECT_EQ(a.path, "relative.sock");

  ASSERT_TRUE(parse_address("tcp:127.0.0.1:9473", a));
  EXPECT_EQ(a.kind, Address::Kind::kTcp);
  EXPECT_TRUE(a.is_tcp());
  EXPECT_EQ(a.host, "127.0.0.1");
  EXPECT_EQ(a.port, 9473);
  EXPECT_EQ(a.spec, "tcp:127.0.0.1:9473");

  ASSERT_TRUE(parse_address("tcp:localhost:1", a));
  EXPECT_EQ(a.host, "localhost");
  EXPECT_EQ(a.port, 1);
  ASSERT_TRUE(parse_address("tcp:example.com:65535", a));
  EXPECT_EQ(a.port, 65535);
}

TEST(AddressParseTest, RejectsMalformedSpecsWithReasons) {
  const char* bad[] = {
      "",                      // empty bare path
      "unix:",                 // empty unix path
      "tcp:127.0.0.1",         // missing port
      "tcp:localhost",         // missing port
      "tcp::9000",             // empty host
      "tcp:h:",                // empty port
      "tcp:h:0",               // port below range
      "tcp:h:65536",           // port above range
      "tcp:h:12x",             // trailing garbage in port
      "tcp:h:-5",              // negative port
      "http:host:80",          // unknown scheme (colon => not a bare path)
      "host:80",               // bare path may not contain ':'
  };
  for (const char* spec : bad) {
    Address a;
    std::string error;
    EXPECT_FALSE(parse_address(spec, a, &error)) << spec;
    EXPECT_FALSE(error.empty()) << spec;
  }
  // A unix path longer than sun_path cannot be bound, so it cannot parse.
  Address a;
  std::string error;
  EXPECT_FALSE(parse_address("unix:/" + std::string(200, 'x'), a, &error));
  EXPECT_NE(error.find("longer than"), std::string::npos) << error;
}

TEST(AddressParseTest, ErrorNamesAreStable) {
  EXPECT_STREQ(transport_error_name(TransportError::kOk), "ok");
  EXPECT_STREQ(transport_error_name(TransportError::kBadAddress),
               "bad_address");
  EXPECT_STREQ(transport_error_name(TransportError::kAddrInUse),
               "addr_in_use");
  EXPECT_STREQ(transport_error_name(TransportError::kRefused), "refused");
  EXPECT_STREQ(transport_error_name(TransportError::kIoError), "io_error");
}

// ------------------------------------------------------- bind/dial types ---

TEST(TransportTest, UnixBindDialAndTypedRefusal) {
  const std::string path = unique_socket_path();
  Address addr;
  ASSERT_TRUE(parse_address("unix:" + path, addr));

  TransportResult listener = bind_listen(addr);
  ASSERT_TRUE(listener.ok()) << listener.message;
  EXPECT_TRUE(endpoint_alive(addr));
  EXPECT_TRUE(endpoint_alive("unix:" + path));

  // A second bind on the same live path is a typed EADDRINUSE.
  TransportResult second = bind_listen(addr);
  EXPECT_FALSE(second.ok());
  EXPECT_EQ(second.error, TransportError::kAddrInUse) << second.message;

  TransportResult conn = dial(addr);
  ASSERT_TRUE(conn.ok()) << conn.message;
  const char ping = 'p';
  ASSERT_EQ(::send(conn.fd, &ping, 1, MSG_NOSIGNAL), 1);
  // The endpoint_alive probes above each queued (and closed) a connection
  // ahead of ours; drain until the one carrying our byte arrives.
  char got = 0;
  for (int i = 0; i < 5 && got != 'p'; ++i) {
    const int accepted = ::accept(listener.fd, nullptr, nullptr);
    ASSERT_GE(accepted, 0);
    (void)::read(accepted, &got, 1);
    ::close(accepted);
  }
  EXPECT_EQ(got, 'p');
  ::close(conn.fd);
  ::close(listener.fd);
  ::unlink(path.c_str());

  // Nobody listening: dial answers the typed refusal, not a string.
  TransportResult refused = dial(addr);
  EXPECT_FALSE(refused.ok());
  EXPECT_EQ(refused.error, TransportError::kRefused) << refused.message;
  EXPECT_FALSE(endpoint_alive(addr));
}

TEST(TransportTest, TcpBindDialAddrInUseAndPeerDescription) {
  Address addr;
  TransportResult listener;
  for (int attempt = 0; attempt < 5 && !listener.ok(); ++attempt) {
    ASSERT_TRUE(parse_address(
        "tcp:127.0.0.1:" + std::to_string(pick_free_tcp_port()), addr));
    listener = bind_listen(addr);
  }
  ASSERT_TRUE(listener.ok()) << listener.message;

  // A live listener on the port: bind answers typed EADDRINUSE.
  TransportResult second = bind_listen(addr);
  EXPECT_FALSE(second.ok());
  EXPECT_EQ(second.error, TransportError::kAddrInUse) << second.message;

  TransportResult conn = dial(addr);
  ASSERT_TRUE(conn.ok()) << conn.message;
  const int accepted = ::accept(listener.fd, nullptr, nullptr);
  ASSERT_GE(accepted, 0);
  // Accept-time peer logging: the dialing side shows up as tcp:ip:port.
  EXPECT_EQ(peer_description(accepted).rfind("tcp:127.0.0.1:", 0), 0u)
      << peer_description(accepted);
  tune_stream_fd(accepted);  // must not crash / change semantics
  ::close(accepted);
  ::close(conn.fd);
  ::close(listener.fd);

  // Dead endpoint: typed connection-refused.
  Address dead;
  ASSERT_TRUE(parse_address(
      "tcp:127.0.0.1:" + std::to_string(pick_free_tcp_port()), dead));
  TransportResult refused = dial(dead);
  EXPECT_FALSE(refused.ok());
  EXPECT_EQ(refused.error, TransportError::kRefused) << refused.message;

  // Unresolvable host: typed bad-address.
  Address bogus;
  ASSERT_TRUE(parse_address("tcp:no.such.host.invalid:9999", bogus));
  TransportResult unresolved = dial(bogus);
  EXPECT_FALSE(unresolved.ok());
  EXPECT_EQ(unresolved.error, TransportError::kBadAddress)
      << unresolved.message;
}

// ------------------------------------------------------- golden fixture ---

// Pins protocol v1's byte-level frame layout against an independently
// generated fixture (tests/data/gen_golden_frames.py: struct.pack +
// zlib.crc32, no C++ code involved).  If this fails, the wire format
// changed: bump the protocol version, don't regenerate the fixture.
TEST(GoldenFramesTest, EncodersMatchTheIndependentFixture) {
  std::vector<std::uint8_t> want;
  auto add = [&](FrameType type, std::uint64_t id,
                 std::span<const std::uint8_t> payload,
                 std::uint32_t deadline_ms = 0) {
    FrameHeader h;
    h.type = type;
    h.request_id = id;
    h.deadline_ms = deadline_ms;
    const std::vector<std::uint8_t> f = encode_frame(h, payload);
    want.insert(want.end(), f.begin(), f.end());
  };

  add(FrameType::kPing, 1, {});
  add(FrameType::kStatsRequest, 2, {});

  svc::ExecQuery e;
  e.kernel = 3;
  e.device = static_cast<arch::DeviceId>(1);
  e.threads = 60;
  svc::CollectiveQuery c;
  c.op = static_cast<svc::CollectiveOp>(2);
  c.device = static_cast<arch::DeviceId>(1);
  c.ranks = 60;
  c.message_bytes = sim::Bytes{65536};
  c.stack = static_cast<fabric::SoftwareStack>(1);
  svc::LatencyQuery l;
  l.device = static_cast<arch::DeviceId>(0);
  l.working_set = sim::Bytes{1048576};
  l.iterations = 2;
  const std::vector<svc::Query> queries = {
      svc::Query::of(e), svc::Query::of(c), svc::Query::of(l)};
  add(FrameType::kBatchRequest, 3, encode_batch_request(queries), 5000);

  const double values[] = {1.5, 3.75};
  const double secondary[] = {2.25, 0.125};
  const std::uint32_t flags[] = {1, 2};
  add(FrameType::kBatchResponse, 3,
      encode_batch_response(values, secondary, flags));

  add(FrameType::kError, 4, encode_error(WireError::kRetryLater, 7));

  WireStats stats;
  stats.served = 101;
  stats.rejected = 102;
  stats.timed_out = 103;
  stats.malformed = 104;
  stats.draining_rejected = 105;
  stats.engine_queries = 106;
  stats.engine_hits = 107;
  stats.engine_misses = 108;
  stats.connected_clients = 109;
  stats.calibration_hash = 110;
  stats.shard_index = 111;
  stats.shard_count = 112;
  add(FrameType::kStatsResponse, 5, encode_stats(stats));

  RebalanceRequest req;
  req.expect_old_count = 2;
  req.backends = {"unix:/tmp/a.sock", "tcp:10.0.0.2:7000"};
  add(FrameType::kRebalance, 6, encode_rebalance_request(req));

  RebalanceReport report;
  report.code = WireError::kOk;
  report.moved_ranges = 3;
  report.records_streamed = 123456;
  report.epoch = 7;
  add(FrameType::kRebalanceDone, 6, encode_rebalance_report(report));

  add(FrameType::kShardAssign, 7, encode_shard_assign(1, 3));
  add(FrameType::kSnapshotFetch, 8, encode_snapshot_fetch(0x1000, 0x20000000));

  std::ifstream is(std::string(MAIA_TEST_DATA_DIR) + "/golden_frames_v1.bin",
                   std::ios::binary);
  ASSERT_TRUE(is.is_open()) << "missing golden_frames_v1.bin";
  const std::vector<std::uint8_t> golden(
      (std::istreambuf_iterator<char>(is)), std::istreambuf_iterator<char>());

  ASSERT_EQ(want.size(), golden.size())
      << "frame layout size drift vs the independent fixture";
  EXPECT_EQ(std::memcmp(want.data(), golden.data(), want.size()), 0)
      << "byte-level wire layout drift: protocol v1 is pinned";

  // The fixture must also replay cleanly through the parser, landing the
  // exact frame sequence with every payload decodable.
  FrameParser parser;
  parser.feed(golden);
  const FrameType expect_types[] = {
      FrameType::kPing,          FrameType::kStatsRequest,
      FrameType::kBatchRequest,  FrameType::kBatchResponse,
      FrameType::kError,         FrameType::kStatsResponse,
      FrameType::kRebalance,     FrameType::kRebalanceDone,
      FrameType::kShardAssign,   FrameType::kSnapshotFetch,
  };
  const std::uint64_t expect_ids[] = {1, 2, 3, 3, 4, 5, 6, 6, 7, 8};
  for (std::size_t i = 0; i < std::size(expect_types); ++i) {
    Frame frame;
    ASSERT_EQ(parser.next(frame), FrameParser::Status::kFrame) << "frame " << i;
    EXPECT_EQ(frame.header.type, expect_types[i]) << "frame " << i;
    EXPECT_EQ(frame.header.request_id, expect_ids[i]) << "frame " << i;
  }
  Frame tail;
  EXPECT_EQ(parser.next(tail), FrameParser::Status::kNeedMore);
  EXPECT_EQ(parser.buffered_bytes(), 0u);

  // Spot-decode the admin payloads out of the replay to close the loop.
  FrameParser again;
  again.feed(golden);
  Frame frame;
  for (int i = 0; i < 7; ++i) ASSERT_EQ(again.next(frame),
                                        FrameParser::Status::kFrame);
  RebalanceRequest got_req;
  ASSERT_TRUE(decode_rebalance_request(frame.payload, got_req));
  EXPECT_EQ(got_req.expect_old_count, 2u);
  ASSERT_EQ(got_req.backends.size(), 2u);
  EXPECT_EQ(got_req.backends[1], "tcp:10.0.0.2:7000");
  ASSERT_EQ(again.next(frame), FrameParser::Status::kFrame);
  const std::optional<RebalanceReport> got_rep =
      decode_rebalance_report(frame.payload);
  ASSERT_TRUE(got_rep.has_value());
  EXPECT_EQ(got_rep->records_streamed, 123456u);
  EXPECT_EQ(got_rep->epoch, 7u);
}

// ------------------------------------------------- TCP vs unix identity ---

TEST(TcpServerTest, ByteIdenticalAcrossTransports) {
  ServerOn unix_server(/*tcp=*/false);
  ServerOn tcp_server(/*tcp=*/true);
  ASSERT_NE(unix_server.server, nullptr);
  ASSERT_NE(tcp_server.server, nullptr);

  svc::QueryEngine reference_engine = make_engine();
  const std::vector<svc::Query> batch =
      random_batch(test::case_seed(0x7c91), 600);
  svc::BatchResults reference;
  reference_engine.evaluate_serial(batch, reference);

  Client over_unix, over_tcp;
  std::string error;
  ASSERT_TRUE(over_unix.connect(unix_server.config.socket_path, &error))
      << error;
  ASSERT_TRUE(over_tcp.connect(tcp_server.config.socket_path, &error))
      << error;

  std::vector<WireResult> unix_results, tcp_results;
  ASSERT_EQ(over_unix.evaluate(batch, unix_results).error, WireError::kOk);
  ASSERT_EQ(over_tcp.evaluate(batch, tcp_results).error, WireError::kOk);
  ASSERT_EQ(unix_results.size(), batch.size());
  ASSERT_EQ(tcp_results.size(), batch.size());

  // The transport must be invisible: TCP loopback, unix socket, and the
  // local serial engine all answer the same bytes.
  ASSERT_EQ(std::memcmp(unix_results.data(), tcp_results.data(),
                        unix_results.size() * sizeof(WireResult)),
            0);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(std::memcmp(&tcp_results[i].value, &reference.values()[i], 8), 0)
        << "query " << i;
    EXPECT_EQ(
        std::memcmp(&tcp_results[i].secondary, &reference.secondary()[i], 8), 0)
        << "query " << i;
  }

  // The server answers stats over TCP like any other transport.
  const std::optional<WireStats> stats = over_tcp.stats();
  ASSERT_TRUE(stats.has_value());
  EXPECT_GE(stats->served, 1u);
}

// --------------------------------------------------------- fault proxy ---

TEST(FaultProxyTest, PartialDeliveryAndStallsStayByteIdentical) {
  ServerOn backend(/*tcp=*/false);
  ASSERT_NE(backend.server, nullptr);

  test::FaultProxy::Config fault;
  fault.target = backend.config.socket_path;
  fault.seed = test::case_seed(0xfa01);
  fault.max_chunk = 7;         // every frame arrives in many partial reads
  fault.chunk_delay_us = 50;   // each boundary is a visible stall window
  test::FaultProxy proxy(fault);
  std::string error;
  ASSERT_TRUE(proxy.start(&error)) << error;

  svc::QueryEngine reference_engine = make_engine();
  const std::vector<svc::Query> batch =
      random_batch(test::case_seed(0xfa02), 96);
  svc::BatchResults reference;
  reference_engine.evaluate_serial(batch, reference);

  Client client;
  ASSERT_TRUE(client.connect(proxy.address(), &error)) << error;
  std::vector<WireResult> results, replay;
  ASSERT_EQ(client.evaluate(batch, results).error, WireError::kOk);
  ASSERT_EQ(client.evaluate(batch, replay).error, WireError::kOk);
  ASSERT_EQ(results.size(), batch.size());
  EXPECT_EQ(std::memcmp(results.data(), replay.data(),
                        results.size() * sizeof(WireResult)),
            0);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(std::memcmp(&results[i].value, &reference.values()[i], 8), 0)
        << "query " << i;
  }
  EXPECT_EQ(proxy.connections(), 1u);
  EXPECT_GT(proxy.forwarded_bytes(),
            2 * batch.size() * kWireQueryBytes);  // both directions flowed
  client.close();
  proxy.stop();
}

TEST(FaultProxyTest, KillMidFrameFailsTypedAndServerSurvives) {
  ServerOn backend(/*tcp=*/false);
  ASSERT_NE(backend.server, nullptr);

  test::FaultProxy::Config fault;
  fault.target = backend.config.socket_path;
  fault.seed = test::case_seed(0xde00);
  test::FaultProxy proxy(fault);
  std::string error;
  ASSERT_TRUE(proxy.start(&error)) << error;

  const std::vector<svc::Query> batch =
      random_batch(test::case_seed(0xde01), 64);

  Client client;
  ASSERT_TRUE(client.connect(proxy.address(), &error)) << error;
  std::vector<WireResult> results;
  ASSERT_EQ(client.evaluate(batch, results).error, WireError::kOk);

  // Cut the stream 40 bytes into the next exchange: the request (or its
  // response) truncates mid-frame.  The client must fail with the typed
  // transport error — never a partial or corrupted result.
  proxy.arm_kill_after(40);
  const ClientOutcome cut = client.evaluate(batch, results);
  EXPECT_EQ(cut.error, WireError::kMalformed);
  EXPECT_EQ(proxy.kills(), 1u);

  // The server itself is unharmed: a fresh direct connection serves.
  Client direct;
  ASSERT_TRUE(direct.connect(backend.config.socket_path, &error)) << error;
  ASSERT_EQ(direct.evaluate(batch, results).error, WireError::kOk);
  EXPECT_EQ(results.size(), batch.size());
  proxy.stop();
}

TEST(FaultProxyTest, DuplicationCorruptionIsNeverHalfAccepted) {
  ServerOn backend(/*tcp=*/false);
  ASSERT_NE(backend.server, nullptr);

  svc::QueryEngine reference_engine = make_engine();
  const std::vector<svc::Query> batch =
      random_batch(test::case_seed(0xdc01), 48);
  svc::BatchResults reference;
  reference_engine.evaluate_serial(batch, reference);

  int clean = 0, corrupted = 0;
  for (std::uint32_t round = 0; round < 12; ++round) {
    test::FaultProxy::Config fault;
    fault.target = backend.config.socket_path;
    fault.seed = test::case_seed(0xdc10 + round);
    fault.max_chunk = 64;
    fault.p_dup_chunk = 0.08;  // duplicated chunks shift the byte stream
    test::FaultProxy proxy(fault);
    std::string error;
    ASSERT_TRUE(proxy.start(&error)) << error;

    Client client;
    ASSERT_TRUE(client.connect(proxy.address(), &error)) << error;
    std::vector<WireResult> results;
    const ClientOutcome outcome = client.evaluate(batch, results);
    if (outcome.ok()) {
      // Survived the schedule: the answer must still be exact.
      ASSERT_EQ(results.size(), batch.size());
      for (std::size_t i = 0; i < batch.size(); ++i) {
        ASSERT_EQ(std::memcmp(&results[i].value, &reference.values()[i], 8), 0)
            << "round " << round << " query " << i;
      }
      ++clean;
    } else {
      // Corrupted: the failure is the typed transport/CRC rejection.
      EXPECT_EQ(outcome.error, WireError::kMalformed)
          << "round " << round << ": "
          << wire_error_name(outcome.error);
      ++corrupted;
    }
    client.close();
    proxy.stop();
  }
  // The seeded schedules must exercise the corruption path; if every
  // round passed clean the fault injector is not injecting.
  EXPECT_GT(corrupted, 0) << clean << " clean rounds";
}

TEST(FaultProxyTest, DroppedChunksStallIsCutByStop) {
  ServerOn backend(/*tcp=*/false);
  ASSERT_NE(backend.server, nullptr);

  test::FaultProxy::Config fault;
  fault.target = backend.config.socket_path;
  fault.seed = test::case_seed(0xd301);
  fault.max_chunk = 16;
  fault.p_drop_chunk = 0.35;  // truncation: requests/responses lose bytes
  test::FaultProxy proxy(fault);
  std::string error;
  ASSERT_TRUE(proxy.start(&error)) << error;

  const std::vector<svc::Query> batch =
      random_batch(test::case_seed(0xd302), 128);

  std::atomic<bool> done{false};
  WireError observed = WireError::kOk;
  std::thread worker([&] {
    Client client;
    std::string conn_error;
    if (!client.connect(proxy.address(), &conn_error)) {
      observed = WireError::kMalformed;
      done.store(true, std::memory_order_release);
      return;
    }
    std::vector<WireResult> results;
    // With 35% of chunks swallowed this stalls (missing bytes) or fails
    // typed (CRC / desync) — it must NEVER return kOk with wrong bytes.
    for (int i = 0; i < 50; ++i) {
      const ClientOutcome outcome = client.evaluate(batch, results);
      if (!outcome.ok()) {
        observed = outcome.error;
        break;
      }
    }
    done.store(true, std::memory_order_release);
  });

  // Give the stall a moment to form, then cut every proxied connection:
  // the blocked client must unwind with the typed failure, not hang.
  for (int i = 0; i < 20 && !done.load(std::memory_order_acquire); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }
  proxy.stop();
  worker.join();
  EXPECT_TRUE(done.load());
  EXPECT_EQ(observed, WireError::kMalformed)
      << wire_error_name(observed);
}

// ------------------------------------------------------- TCP drain soak ---

TEST(TcpServerTest, DrainUnderLoadSoakOverLoopback) {
  ServerOn server(/*tcp=*/true);
  ASSERT_NE(server.server, nullptr);

  svc::QueryEngine reference_engine = make_engine();
  constexpr int kThreads = 3;
  std::vector<std::vector<svc::Query>> batches;
  std::vector<svc::BatchResults> references(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    batches.push_back(random_batch(
        test::case_seed(0x50a0 + static_cast<std::uint32_t>(t)), 300));
    reference_engine.evaluate_serial(batches.back(), references[t]);
  }

  std::atomic<bool> draining{false};
  std::atomic<int> divergences{0};
  std::atomic<int> unexpected{0};
  std::atomic<int> completed{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Client client;
      std::string error;
      if (!client.connect(server.config.socket_path, &error)) {
        unexpected.fetch_add(1);
        return;
      }
      std::vector<WireResult> results;
      for (int iter = 0; iter < 2000; ++iter) {
        const ClientOutcome outcome =
            client.evaluate_with_retry(batches[t], results);
        if (outcome.ok()) {
          completed.fetch_add(1);
          bool equal = results.size() == batches[t].size();
          for (std::size_t i = 0; equal && i < results.size(); ++i) {
            equal = std::memcmp(&results[i].value,
                                &references[t].values()[i], 8) == 0;
          }
          if (!equal) divergences.fetch_add(1);
        } else if (outcome.error == WireError::kDraining ||
                   outcome.error == WireError::kMalformed) {
          // Typed refusal / connection closed by the drain: done.
          return;
        } else {
          unexpected.fetch_add(1);
          return;
        }
        if (draining.load(std::memory_order_acquire) && iter > 5) return;
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  server.server->request_drain();
  draining.store(true, std::memory_order_release);
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(server.server->wait(), 0) << "drain must complete cleanly";

  EXPECT_EQ(divergences.load(), 0);
  EXPECT_EQ(unexpected.load(), 0);
  EXPECT_GT(completed.load(), 0) << "soak never completed a batch";
}

}  // namespace
}  // namespace maia::net
