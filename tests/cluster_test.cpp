// Tests for the multi-node extension: the InfiniBand model and the
// cross-node scaling projections, which must agree with the single-node
// conclusions (coprocessor-native pays the PCIe-to-HCA penalty on every
// message, communication-heavy codes stop scaling first).
#include <gtest/gtest.h>

#include "arch/registry.hpp"
#include "cluster/interconnect.hpp"
#include "cluster/scaling.hpp"

namespace maia::cluster {
namespace {

ClusterModel model() { return ClusterModel(arch::maia_node()); }

// ---------------------------------------------------------- interconnect ---

TEST(Interconnect, FdrPortBandwidth) {
  const IbInterconnect ib(arch::maia_node().hca);
  // 56 Gb/s with 64b/66b: ~6.8 GB/s.
  EXPECT_NEAR(ib.port_bandwidth() / 1e9, 6.8, 0.1);
}

TEST(Interconnect, HypercubeHops) {
  EXPECT_EQ(IbInterconnect::hops(0, 1), 1);
  EXPECT_EQ(IbInterconnect::hops(0, 3), 2);
  EXPECT_EQ(IbInterconnect::hops(0, 127), 7);
  EXPECT_EQ(IbInterconnect::hops(5, 5), 1);  // floor at one switch
}

TEST(Interconnect, CoprocessorEndpointsPayThePciePenalty) {
  const IbInterconnect ib(arch::maia_node().hca);
  const double host_msg = ib.message_time(4096, 1, false);
  const double phi_msg = ib.message_time(4096, 1, true);
  EXPECT_GT(phi_msg, host_msg + 3e-6);  // the host-Phi0 3.3 us, at least
  // Large messages are capped by the forwarding bandwidth.
  const double ratio = ib.message_time(16 << 20, 1, true) /
                       ib.message_time(16 << 20, 1, false);
  EXPECT_GT(ratio, 2.5);
}

TEST(Interconnect, LatencyGrowsWithHops) {
  const IbInterconnect ib(arch::maia_node().hca);
  EXPECT_LT(ib.message_time(0, 1, false), ib.message_time(0, 7, false));
}

// -------------------------------------------------------------- scaling ---

TEST(Scaling, RejectsNonPowerOfTwo) {
  EXPECT_THROW(model().run(npb::Benchmark::kMG, NodeMode::kHostNative, 3),
               std::invalid_argument);
}

TEST(Scaling, OneNodeHasNoCommAndFullEfficiency) {
  const auto r = model().run(npb::Benchmark::kMG, NodeMode::kHostNative, 1);
  EXPECT_DOUBLE_EQ(r.comm_fraction, 0.0);
  EXPECT_NEAR(r.efficiency, 1.0, 1e-9);
}

TEST(Scaling, EfficiencyDecreasesWithNodes) {
  const auto m = model();
  double prev = 1.1;
  for (int n = 1; n <= 128; n *= 4) {
    const auto r = m.run(npb::Benchmark::kMG, NodeMode::kHostNative, n);
    EXPECT_LE(r.efficiency, prev + 1e-9) << n;
    EXPECT_LE(r.efficiency, 1.0 + 1e-9);
    prev = r.efficiency;
  }
}

TEST(Scaling, ThroughputGrowsForComputeHeavyCodes) {
  // EP is embarrassingly parallel: near-linear to 128 nodes.
  const auto m = model();
  const auto curve = m.scaling_curve(npb::Benchmark::kEP, NodeMode::kHostNative);
  EXPECT_TRUE(curve.is_non_decreasing());
  const auto r128 = m.run(npb::Benchmark::kEP, NodeMode::kHostNative, 128);
  EXPECT_GT(r128.efficiency, 0.9);
}

TEST(Scaling, CommunicationBoundCodesStopScalingFirst) {
  // CG (latency-bound allreduces) saturates before EP.
  const auto m = model();
  const int cg_limit = m.scaling_limit(npb::Benchmark::kCG, NodeMode::kHostNative);
  const int ep_limit = m.scaling_limit(npb::Benchmark::kEP, NodeMode::kHostNative);
  EXPECT_LE(cg_limit, ep_limit);
  const auto cg128 = m.run(npb::Benchmark::kCG, NodeMode::kHostNative, 128);
  const auto ep128 = m.run(npb::Benchmark::kEP, NodeMode::kHostNative, 128);
  EXPECT_LT(cg128.efficiency, ep128.efficiency);
}

TEST(Scaling, CoprocessorNativeScalesWorseThanHostNative) {
  // Every inter-node message from a Phi rank pays the PCIe forwarding
  // penalty: at scale the efficiency gap widens (the multi-node
  // consequence of the paper's §4.4 warning).
  const auto m = model();
  for (npb::Benchmark b : {npb::Benchmark::kMG, npb::Benchmark::kCG}) {
    const auto host = m.run(b, NodeMode::kHostNative, 64);
    const auto phi = m.run(b, NodeMode::kCoprocessorNative, 64);
    EXPECT_LT(phi.efficiency, host.efficiency) << npb::benchmark_name(b);
  }
}

TEST(Scaling, SymmetricWinsAtSmallScaleForStreamBoundCodes) {
  // MG is bandwidth-bound and the Phi adds bandwidth: symmetric beats
  // host-native on few nodes, mirroring Fig 23's single-node 1.9x.
  const auto m = model();
  const auto host1 = m.run(npb::Benchmark::kMG, NodeMode::kHostNative, 1);
  const auto sym1 = m.run(npb::Benchmark::kMG, NodeMode::kSymmetric, 1);
  EXPECT_GT(sym1.gflops, 1.4 * host1.gflops);
}

TEST(Scaling, CommFractionGrowsWithNodes) {
  const auto m = model();
  const auto r8 = m.run(npb::Benchmark::kCG, NodeMode::kHostNative, 8);
  const auto r128 = m.run(npb::Benchmark::kCG, NodeMode::kHostNative, 128);
  EXPECT_GT(r128.comm_fraction, r8.comm_fraction);
}

TEST(Scaling, CurveCoversPowersOfTwo) {
  const auto curve =
      model().scaling_curve(npb::Benchmark::kBT, NodeMode::kHostNative, 32);
  ASSERT_EQ(curve.size(), 6u);  // 1..32
  EXPECT_DOUBLE_EQ(curve[0].x, 1.0);
  EXPECT_DOUBLE_EQ(curve[5].x, 32.0);
}

}  // namespace
}  // namespace maia::cluster
