// Verification of the BT/SP/LU pseudo-application machinery: 5x5 block
// algebra, line solvers, and solver convergence to the manufactured
// solution.
#include <gtest/gtest.h>

#include <cmath>

#include "npb/bt.hpp"
#include "npb/cfd_common.hpp"
#include "npb/common.hpp"
#include "npb/lu.hpp"
#include "npb/sp.hpp"
#include "sim/rng.hpp"

namespace maia::npb {
namespace {

Mat5 random_diag_dominant(sim::Rng& rng) {
  Mat5 m;
  for (std::size_t r = 0; r < 5; ++r) {
    double off = 0.0;
    for (std::size_t c = 0; c < 5; ++c) {
      if (r == c) continue;
      m.at(r, c) = rng.uniform(-1.0, 1.0);
      off += std::fabs(m.at(r, c));
    }
    m.at(r, r) = off + rng.uniform(1.0, 2.0);
  }
  return m;
}

Vec5 random_vec(sim::Rng& rng) {
  Vec5 v;
  for (std::size_t i = 0; i < 5; ++i) v[i] = rng.uniform(-1.0, 1.0);
  return v;
}

// ----------------------------------------------------------------- Mat5 ---

TEST(Mat5Test, IdentityActsAsIdentity) {
  sim::Rng rng(1);
  const Vec5 x = random_vec(rng);
  const Vec5 y = Mat5::identity() * x;
  for (std::size_t i = 0; i < 5; ++i) EXPECT_DOUBLE_EQ(y[i], x[i]);
}

TEST(Mat5Test, SolveInvertsMultiply) {
  sim::Rng rng(2);
  for (int trial = 0; trial < 20; ++trial) {
    const Mat5 a = random_diag_dominant(rng);
    const Vec5 x = random_vec(rng);
    const Vec5 b = a * x;
    const Vec5 solved = a.solve(b);
    for (std::size_t i = 0; i < 5; ++i) EXPECT_NEAR(solved[i], x[i], 1e-10);
  }
}

TEST(Mat5Test, InverseTimesSelfIsIdentity) {
  sim::Rng rng(3);
  const Mat5 a = random_diag_dominant(rng);
  const Mat5 prod = a * a.inverse();
  for (std::size_t r = 0; r < 5; ++r) {
    for (std::size_t c = 0; c < 5; ++c) {
      EXPECT_NEAR(prod.at(r, c), r == c ? 1.0 : 0.0, 1e-10);
    }
  }
}

TEST(Mat5Test, SolveThrowsOnSingular) {
  Mat5 zero;
  Vec5 b;
  b[0] = 1.0;
  EXPECT_THROW(zero.solve(b), std::runtime_error);
}

TEST(Mat5Test, MultiplyIsAssociativeWithVector) {
  sim::Rng rng(4);
  const Mat5 a = random_diag_dominant(rng);
  const Mat5 b = random_diag_dominant(rng);
  const Vec5 x = random_vec(rng);
  const Vec5 lhs = (a * b) * x;
  const Vec5 rhs = a * (b * x);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_NEAR(lhs[i], rhs[i], 1e-10);
}

// ------------------------------------------------------- block tridiagonal ---

TEST(BlockTridiag, SolvesAgainstDirectMultiplication) {
  sim::Rng rng(5);
  const Mat5 diag = random_diag_dominant(rng) + Mat5::scaled_identity(6.0);
  const Mat5 lower = random_diag_dominant(rng) * 0.2;
  const Mat5 upper = random_diag_dominant(rng) * 0.2;

  const std::size_t n = 12;
  std::vector<Vec5> x_true(n);
  for (auto& v : x_true) v = random_vec(rng);

  // b = T x
  std::vector<Vec5> b(n);
  for (std::size_t i = 0; i < n; ++i) {
    b[i] = diag * x_true[i];
    if (i > 0) b[i] += lower * x_true[i - 1];
    if (i + 1 < n) b[i] += upper * x_true[i + 1];
  }
  solve_block_tridiagonal(lower, diag, upper, b);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t c = 0; c < 5; ++c) EXPECT_NEAR(b[i][c], x_true[i][c], 1e-9);
  }
}

TEST(BlockTridiag, SingleBlockReducesToSolve) {
  sim::Rng rng(6);
  const Mat5 diag = random_diag_dominant(rng);
  const Vec5 x = random_vec(rng);
  std::vector<Vec5> b{diag * x};
  solve_block_tridiagonal(Mat5{}, diag, Mat5{}, b);
  for (std::size_t c = 0; c < 5; ++c) EXPECT_NEAR(b[0][c], x[c], 1e-11);
}

// ---------------------------------------------------------- pentadiagonal ---

TEST(Pentadiag, SolvesAgainstDirectMultiplication) {
  const double b2 = 0.1, b1 = -0.7, d = 3.0, a1 = -0.6, a2 = 0.05;
  const std::size_t n = 17;
  sim::Rng rng(7);
  std::vector<double> x_true(n);
  for (auto& v : x_true) v = rng.uniform(-1.0, 1.0);
  std::vector<double> rhs(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double s = d * x_true[i];
    if (i >= 2) s += b2 * x_true[i - 2];
    if (i >= 1) s += b1 * x_true[i - 1];
    if (i + 1 < n) s += a1 * x_true[i + 1];
    if (i + 2 < n) s += a2 * x_true[i + 2];
    rhs[i] = s;
  }
  solve_pentadiagonal(b2, b1, d, a1, a2, rhs);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(rhs[i], x_true[i], 1e-10);
}

TEST(Pentadiag, TridiagonalSpecialCase) {
  // Zero outer bands must behave as a plain tridiagonal solve.
  const std::size_t n = 9;
  std::vector<double> x_true(n, 1.0);
  std::vector<double> rhs(n);
  for (std::size_t i = 0; i < n; ++i) {
    rhs[i] = 2.0;
    if (i >= 1) rhs[i] += -0.5;
    if (i + 1 < n) rhs[i] += -0.5;
  }
  solve_pentadiagonal(0.0, -0.5, 2.0, -0.5, 0.0, rhs);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(rhs[i], 1.0, 1e-11);
}

// ---------------------------------------------------------------- problem ---

TEST(CfdProblem, ForcingMakesExactSolutionStationary) {
  const auto p = make_cfd_problem(9);
  const StateGrid forcing = p.make_forcing();
  StateGrid ue(p.n);
  for (std::size_t i = 0; i < p.n; ++i) {
    for (std::size_t j = 0; j < p.n; ++j) {
      for (std::size_t k = 0; k < p.n; ++k) ue.at(i, j, k) = p.exact(i, j, k);
    }
  }
  const StateGrid r = p.residual(ue, forcing);
  EXPECT_NEAR(r.rms(), 0.0, 1e-14);
}

TEST(CfdProblem, InitialGuessHasExactBoundaries) {
  const auto p = make_cfd_problem(8);
  const StateGrid u = p.initial_guess();
  const Vec5 corner = p.exact(0, 0, 0);
  for (std::size_t c = 0; c < 5; ++c) {
    EXPECT_DOUBLE_EQ(u.at(0, 0, 0)[c], corner[c]);
  }
  // Interior zero.
  for (std::size_t c = 0; c < 5; ++c) {
    EXPECT_DOUBLE_EQ(u.at(3, 3, 3)[c], 0.0);
  }
}

TEST(CfdProblem, RejectsTinyGrids) {
  EXPECT_THROW(make_cfd_problem(3), std::invalid_argument);
}

// ------------------------------------------------------------- solvers ---

class SolverConvergence : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SolverConvergence, BtConvergesToManufacturedSolution) {
  // ADI splitting error scales with dt^2: a modest pseudo-time step is the
  // price of the factored implicit operator.
  const auto p = make_cfd_problem(GetParam());
  const auto r = run_bt(p, 240, 0.25);
  EXPECT_LT(r.residual_history.back(), 1e-8 * r.residual_history.front());
  EXPECT_LT(r.solution_error, 1e-6);
}

TEST_P(SolverConvergence, SpConvergesToManufacturedSolution) {
  // The diagonalized implicit operator neglects the advection coupling, so
  // SP needs a smaller pseudo-time step and more iterations than BT —
  // faithfully mirroring the reference benchmark's 400 steps vs BT's 200.
  const auto p = make_cfd_problem(GetParam());
  const auto r = run_sp(p, 300, 0.25);
  EXPECT_LT(r.residual_history.back(), 1e-6 * r.residual_history.front());
  EXPECT_LT(r.solution_error, 1e-4);
}

TEST_P(SolverConvergence, LuConvergesToManufacturedSolution) {
  const auto p = make_cfd_problem(GetParam());
  const auto r = run_lu(p, 120, 0.5);
  EXPECT_LT(r.residual_history.back(), 1e-6 * r.residual_history.front());
  EXPECT_LT(r.solution_error, 1e-4);
}

INSTANTIATE_TEST_SUITE_P(GridSizes, SolverConvergence,
                         ::testing::Values(8, 10, 12));

TEST(Solvers, ResidualsDecreaseMonotonicallyAfterWarmup) {
  const auto p = make_cfd_problem(10);
  const auto bt = run_bt(p, 30, 0.25);
  for (std::size_t i = 3; i < bt.residual_history.size(); ++i) {
    EXPECT_LE(bt.residual_history[i], bt.residual_history[i - 1] * 1.001);
  }
}

TEST(Solvers, AdiSplittingErrorGrowsWithDt) {
  // The factored (I+dtLx)(I+dtLy)(I+dtLz) operator departs from the true
  // I+dtL as dt grows, slowing steady-state convergence.
  const auto p = make_cfd_problem(10);
  const auto small = run_bt(p, 60, 0.25);
  const auto large = run_bt(p, 60, 1.0);
  EXPECT_LT(small.residual_history.back(), large.residual_history.back());
}

TEST(Solvers, SsorShinesOnDiagonallyDominantSystems) {
  // On this strongly diagonally dominant model problem the SSOR sweep of
  // LU out-converges ADI per step (the NPB codes differ on real gas
  // dynamics, but the property worth pinning here is SSOR's contraction).
  const auto p = make_cfd_problem(10);
  const auto bt = run_bt(p, 25, 0.5);
  const auto lu = run_lu(p, 25, 0.5);
  EXPECT_LT(lu.residual_history.back(), bt.residual_history.back());
}

TEST(Solvers, ClassGridSizesMatchNpbTables) {
  EXPECT_EQ(bt_grid_size(ProblemClass::kC), 162u);
  EXPECT_EQ(sp_grid_size(ProblemClass::kC), 162u);
  EXPECT_EQ(lu_grid_size(ProblemClass::kC), 162u);
  EXPECT_EQ(bt_grid_size(ProblemClass::kS), 12u);
}

}  // namespace
}  // namespace maia::npb
