// Tests for the streaming prediction server (src/net): the frame codec
// against a fuzz-style malformed-frame suite (truncation at every header
// boundary, oversized length fields with bounded allocation, bad
// magic/version/CRC answered with typed errors while the connection
// survives), and the live server over a real unix socket — byte-identity
// against the serial engine, admission-queue backpressure (RETRY_LATER,
// never a silent drop), per-request deadlines, stale-socket startup
// robustness, graceful drain with snapshot-on-shutdown, continuous
// batching (interleaved connections stitched into one mega-batch with
// byte-identical per-frame slices, linger flush promptness, post-eval
// deadline re-check, buffer-pool reuse), and multi-client concurrent
// soaks (run under TSan in CI) including drain-under-load with and
// without coalescing.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "arch/registry.hpp"
#include "net/client.hpp"
#include "net/protocol.hpp"
#include "net/server.hpp"
#include "perf/signature.hpp"
#include "svc/engine.hpp"
#include "test_seed.hpp"

namespace maia::net {
namespace {

// ------------------------------------------------------------- fixtures ---

perf::KernelSignature test_kernel(double flops, double bytes) {
  perf::KernelSignature s;
  s.name = "net-test";
  s.flops = flops;
  s.dram_bytes = bytes;
  s.vector_fraction = 0.9;
  return s;
}

svc::QueryEngine make_engine(svc::EngineConfig config = {}) {
  svc::QueryEngine engine(arch::maia_node(), config);
  engine.register_kernel(test_kernel(1e11, 1e8));
  engine.register_kernel(test_kernel(1e9, 1e10));
  return engine;
}

/// A reproducible batch mixing all three query kinds (latency working
/// sets kept small so uncached evaluation stays fast).
std::vector<svc::Query> random_batch(std::uint32_t seed, std::size_t n) {
  std::mt19937 rng(seed);
  const arch::DeviceId devices[] = {arch::DeviceId::kHost, arch::DeviceId::kPhi0,
                                    arch::DeviceId::kPhi1};
  std::vector<svc::Query> batch;
  batch.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    switch (rng() % 3) {
      case 0: {
        svc::ExecQuery q;
        q.kernel = static_cast<std::uint16_t>(rng() % 3);  // 2 = out of range
        q.device = devices[rng() % 3];
        q.threads = static_cast<std::uint16_t>(rng() % 300);
        batch.push_back(svc::Query::of(q));
        break;
      }
      case 1: {
        svc::CollectiveQuery q;
        q.op = static_cast<svc::CollectiveOp>(rng() % 10);
        q.device = devices[rng() % 3];
        q.ranks = static_cast<std::uint16_t>(rng() % 300);
        q.message_bytes = sim::Bytes{1} << (rng() % 20);
        q.stack = (rng() % 2) ? fabric::SoftwareStack::kPreUpdate
                              : fabric::SoftwareStack::kPostUpdate;
        batch.push_back(svc::Query::of(q));
        break;
      }
      default: {
        svc::LatencyQuery q;
        q.device = devices[rng() % 3];
        q.working_set = sim::Bytes{1024} << (rng() % 6);
        q.iterations = static_cast<std::uint16_t>(rng() % 3);
        batch.push_back(svc::Query::of(q));
        break;
      }
    }
  }
  return batch;
}

/// Compare wire results against the engine's serial reference, bit-exact.
void expect_identical(const std::vector<WireResult>& results,
                      const svc::BatchResults& reference) {
  ASSERT_EQ(results.size(), reference.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(std::memcmp(&results[i].value, &reference.values()[i], 8), 0)
        << "value diverged at " << i;
    EXPECT_EQ(std::memcmp(&results[i].secondary, &reference.secondary()[i], 8), 0)
        << "secondary diverged at " << i;
    EXPECT_EQ(results[i].flags, reference.flags()[i]) << "flags diverged at " << i;
  }
}

std::string unique_socket_path() {
  static std::atomic<int> counter{0};
  return "/tmp/maia_net_test." + std::to_string(::getpid()) + "." +
         std::to_string(counter.fetch_add(1)) + ".sock";
}

/// RAII server over a fresh engine on a unique socket path.
struct TestServer {
  svc::QueryEngine engine;
  ServerConfig config;
  std::unique_ptr<Server> server;

  explicit TestServer(ServerConfig base = {}, svc::EngineConfig engine_config = {})
      : engine(make_engine(engine_config)) {
    config = std::move(base);
    config.socket_path = unique_socket_path();
    server = std::make_unique<Server>(engine, config);
    std::string error;
    EXPECT_TRUE(server->start(&error)) << error;
  }

  ~TestServer() {
    if (server != nullptr && server->running()) {
      server->resume_workers();
      server->request_drain();
      server->wait();
    }
    ::unlink(config.socket_path.c_str());
  }

  void connect(Client& client) {
    std::string error;
    ASSERT_TRUE(client.connect(config.socket_path, &error)) << error;
  }
};

FrameHeader batch_header(std::uint64_t id, std::uint32_t deadline_ms = 0) {
  FrameHeader h;
  h.type = FrameType::kBatchRequest;
  h.request_id = id;
  h.deadline_ms = deadline_ms;
  return h;
}

// ----------------------------------------------------------- frame codec ---

TEST(FrameCodecTest, RoundTripsHeaderAndPayload) {
  FrameHeader header;
  header.type = FrameType::kBatchRequest;
  header.request_id = 0x1234'5678'9abc'def0ull;
  header.deadline_ms = 250;
  const std::vector<std::uint8_t> payload = {1, 2, 3, 4, 5};
  const std::vector<std::uint8_t> bytes = encode_frame(header, payload);
  ASSERT_EQ(bytes.size(), kHeaderBytes + payload.size());

  FrameParser parser;
  parser.feed(bytes);
  Frame frame;
  ASSERT_EQ(parser.next(frame), FrameParser::Status::kFrame);
  EXPECT_EQ(frame.header.version, kProtocolVersion);
  EXPECT_EQ(frame.header.type, FrameType::kBatchRequest);
  EXPECT_EQ(frame.header.request_id, header.request_id);
  EXPECT_EQ(frame.header.deadline_ms, 250u);
  EXPECT_EQ(frame.payload, payload);
  EXPECT_EQ(parser.next(frame), FrameParser::Status::kNeedMore);
}

TEST(FrameCodecTest, ParsesByteAtATime) {
  FrameHeader header;
  header.type = FrameType::kPing;
  header.request_id = 7;
  const std::vector<std::uint8_t> bytes = encode_frame(header, {});
  FrameParser parser;
  Frame frame;
  for (std::size_t i = 0; i + 1 < bytes.size(); ++i) {
    parser.feed({&bytes[i], 1});
    ASSERT_EQ(parser.next(frame), FrameParser::Status::kNeedMore);
  }
  parser.feed({&bytes.back(), 1});
  ASSERT_EQ(parser.next(frame), FrameParser::Status::kFrame);
  EXPECT_EQ(frame.header.request_id, 7u);
}

TEST(FrameCodecTest, TruncationAtEveryBoundaryIsJustNeedMore) {
  // A frame cut at any byte — every header boundary and every payload
  // offset — must neither crash, nor poison, nor yield a frame.
  const std::vector<svc::Query> queries = random_batch(test::case_seed(101), 8);
  const std::vector<std::uint8_t> bytes =
      encode_frame(batch_header(42), encode_batch_request(queries));
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    FrameParser parser;
    parser.feed({bytes.data(), cut});
    Frame frame;
    ASSERT_EQ(parser.next(frame), FrameParser::Status::kNeedMore) << "cut=" << cut;
    ASSERT_FALSE(parser.poisoned()) << "cut=" << cut;
    // Delivering the remainder completes the frame.
    parser.feed({bytes.data() + cut, bytes.size() - cut});
    ASSERT_EQ(parser.next(frame), FrameParser::Status::kFrame) << "cut=" << cut;
    ASSERT_EQ(frame.header.request_id, 42u);
  }
}

TEST(FrameCodecTest, BadMagicPoisonsTheStream) {
  std::vector<std::uint8_t> bytes = encode_frame(batch_header(9), {});
  bytes[0] ^= 0xff;
  FrameParser parser;
  parser.feed(bytes);
  Frame frame;
  ASSERT_EQ(parser.next(frame), FrameParser::Status::kBadMagic);
  EXPECT_TRUE(parser.poisoned());
  // A poisoned parser refuses everything after the desync point.
  parser.feed(encode_frame(batch_header(10), {}));
  EXPECT_EQ(parser.next(frame), FrameParser::Status::kNeedMore);
}

TEST(FrameCodecTest, BadVersionIsSkippableAndStreamRecovers) {
  FrameHeader bad = batch_header(11);
  bad.version = kProtocolVersion + 1;
  const std::vector<std::uint8_t> junk_payload = {1, 2, 3};
  std::vector<std::uint8_t> bytes = encode_frame(bad, junk_payload);
  const std::vector<std::uint8_t> good = encode_frame(batch_header(12), {});
  bytes.insert(bytes.end(), good.begin(), good.end());

  FrameParser parser;
  parser.feed(bytes);
  Frame frame;
  ASSERT_EQ(parser.next(frame), FrameParser::Status::kBadVersion);
  EXPECT_EQ(parser.rejected_id(), 11u);
  EXPECT_FALSE(parser.poisoned());
  ASSERT_EQ(parser.next(frame), FrameParser::Status::kFrame);
  EXPECT_EQ(frame.header.request_id, 12u);
}

TEST(FrameCodecTest, BadTypeIsSkippable) {
  FrameHeader bad = batch_header(13);
  std::vector<std::uint8_t> bytes = encode_frame(bad, {});
  put_u16(bytes.data() + 6, 0x7777);  // unknown frame type
  put_u32(bytes.data() + 24, svc::crc32(nullptr, 0));
  const std::vector<std::uint8_t> good = encode_frame(batch_header(14), {});
  bytes.insert(bytes.end(), good.begin(), good.end());

  FrameParser parser;
  parser.feed(bytes);
  Frame frame;
  ASSERT_EQ(parser.next(frame), FrameParser::Status::kBadType);
  EXPECT_EQ(parser.rejected_id(), 13u);
  ASSERT_EQ(parser.next(frame), FrameParser::Status::kFrame);
  EXPECT_EQ(frame.header.request_id, 14u);
}

TEST(FrameCodecTest, BadCrcIsSkippable) {
  const std::vector<std::uint8_t> crc_payload = {0xaa, 0xbb, 0xcc};
  std::vector<std::uint8_t> bytes = encode_frame(batch_header(15), crc_payload);
  bytes[kHeaderBytes + 1] ^= 0x01;  // corrupt payload in flight
  const std::vector<std::uint8_t> good = encode_frame(batch_header(16), {});
  bytes.insert(bytes.end(), good.begin(), good.end());

  FrameParser parser;
  parser.feed(bytes);
  Frame frame;
  ASSERT_EQ(parser.next(frame), FrameParser::Status::kBadCrc);
  EXPECT_EQ(parser.rejected_id(), 15u);
  ASSERT_EQ(parser.next(frame), FrameParser::Status::kFrame);
  EXPECT_EQ(frame.header.request_id, 16u);
}

TEST(FrameCodecTest, OversizedLengthIsBoundedAndPoisons) {
  // A hostile length field must not drive allocation: the parser rejects
  // from the header alone, buffering nothing beyond bytes actually fed.
  std::vector<std::uint8_t> bytes = encode_frame(batch_header(17), {});
  put_u32(bytes.data() + 20, 0xffff'ffffu);  // claims a 4 GiB payload
  FrameParser parser(/*max_payload=*/1024);
  parser.feed(bytes);
  Frame frame;
  ASSERT_EQ(parser.next(frame), FrameParser::Status::kTooLarge);
  EXPECT_TRUE(parser.poisoned());
  EXPECT_LE(parser.buffered_bytes(), bytes.size());
}

TEST(FrameCodecTest, FuzzRandomBytesNeverCrashOrOverAllocate) {
  std::mt19937 rng(test::case_seed(103));
  for (int round = 0; round < 200; ++round) {
    FrameParser parser(/*max_payload=*/4096);
    std::vector<std::uint8_t> junk(1 + rng() % 512);
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng());
    // Occasionally make the junk magic-prefixed so deeper header paths run.
    if (rng() % 2 == 0 && junk.size() >= 4) put_u32(junk.data(), kMagic);
    parser.feed(junk);
    Frame frame;
    for (int step = 0; step < 64; ++step) {
      const FrameParser::Status status = parser.next(frame);
      if (status == FrameParser::Status::kNeedMore) break;
      if (status == FrameParser::Status::kFrame) {
        ASSERT_LE(frame.payload.size(), 4096u);
      }
      if (parser.poisoned()) break;
    }
    ASSERT_LE(parser.buffered_bytes(), junk.size());
  }
}

TEST(FrameCodecTest, BatchRequestRoundTripsAllKinds) {
  const std::vector<svc::Query> queries = random_batch(test::case_seed(105), 64);
  const std::vector<std::uint8_t> payload = encode_batch_request(queries);
  std::vector<svc::Query> decoded;
  ASSERT_EQ(decode_batch_request(payload, decoded), WireError::kOk);
  ASSERT_EQ(decoded.size(), queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    ASSERT_EQ(decoded[i].kind, queries[i].kind) << i;
    switch (queries[i].kind) {
      case svc::QueryKind::kExec:
        EXPECT_EQ(decoded[i].exec.kernel, queries[i].exec.kernel);
        EXPECT_EQ(decoded[i].exec.device, queries[i].exec.device);
        EXPECT_EQ(decoded[i].exec.threads, queries[i].exec.threads);
        break;
      case svc::QueryKind::kCollective:
        EXPECT_EQ(decoded[i].coll.op, queries[i].coll.op);
        EXPECT_EQ(decoded[i].coll.device, queries[i].coll.device);
        EXPECT_EQ(decoded[i].coll.ranks, queries[i].coll.ranks);
        EXPECT_EQ(decoded[i].coll.message_bytes, queries[i].coll.message_bytes);
        EXPECT_EQ(decoded[i].coll.stack, queries[i].coll.stack);
        break;
      case svc::QueryKind::kLatency:
        EXPECT_EQ(decoded[i].lat.device, queries[i].lat.device);
        EXPECT_EQ(decoded[i].lat.working_set, queries[i].lat.working_set);
        EXPECT_EQ(decoded[i].lat.iterations, queries[i].lat.iterations);
        break;
    }
  }
}

TEST(FrameCodecTest, MalformedBatchPayloadsAreRejected) {
  std::vector<svc::Query> decoded;
  // Too short for even the count prelude.
  EXPECT_EQ(decode_batch_request(std::vector<std::uint8_t>(4), decoded),
            WireError::kMalformed);
  // Count promises more records than the payload holds.
  std::vector<std::uint8_t> payload = encode_batch_request(
      random_batch(test::case_seed(107), 4));
  put_u32(payload.data(), 5);
  EXPECT_EQ(decode_batch_request(payload, decoded), WireError::kMalformed);
  // Trailing garbage after the promised records.
  put_u32(payload.data(), 4);
  payload.push_back(0);
  EXPECT_EQ(decode_batch_request(payload, decoded), WireError::kMalformed);
  payload.pop_back();
  // Unknown query kind / device / op / stack, each at record 0.
  for (const std::size_t offset : {std::size_t{8}, std::size_t{9}}) {
    std::vector<std::uint8_t> bad = payload;
    bad[offset] = 0x7f;
    EXPECT_EQ(decode_batch_request(bad, decoded), WireError::kMalformed)
        << "offset " << offset;
  }
  {
    std::vector<std::uint8_t> bad = payload;
    bad[8] = 1;     // collective...
    bad[9] = 0;
    bad[10] = 99;   // ...with an unknown op
    EXPECT_EQ(decode_batch_request(bad, decoded), WireError::kMalformed);
    bad[10] = 0;
    bad[11] = 9;    // ...with an unknown software stack
    EXPECT_EQ(decode_batch_request(bad, decoded), WireError::kMalformed);
  }
}

TEST(FrameCodecTest, BatchResponseRoundTripsBitExactDoubles) {
  const std::vector<double> values = {0.0, -0.0, 1.5e-300, 7.25e300};
  const std::vector<double> secondary = {3.14, -2.5, 0.0, 1e-12};
  const std::vector<std::uint32_t> flags = {0, 1, 0, 1};
  const std::vector<std::uint8_t> payload =
      encode_batch_response(values, secondary, flags);
  const auto decoded = decode_batch_response(payload);
  ASSERT_TRUE(decoded.has_value());
  ASSERT_EQ(decoded->size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(std::memcmp(&(*decoded)[i].value, &values[i], 8), 0);
    EXPECT_EQ(std::memcmp(&(*decoded)[i].secondary, &secondary[i], 8), 0);
    EXPECT_EQ((*decoded)[i].flags, flags[i]);
  }
  EXPECT_FALSE(decode_batch_response(std::vector<std::uint8_t>(7)).has_value());
}

TEST(FrameCodecTest, ErrorAndStatsRoundTrip) {
  std::uint32_t detail = 0;
  EXPECT_EQ(decode_error(encode_error(WireError::kRetryLater, 17), &detail),
            WireError::kRetryLater);
  EXPECT_EQ(detail, 17u);
  EXPECT_EQ(decode_error(std::vector<std::uint8_t>(3)), WireError::kMalformed);

  WireStats stats;
  stats.served = 101;
  stats.rejected = 7;
  stats.engine_hits = 99;
  stats.connected_clients = 4;
  const auto decoded = decode_stats(encode_stats(stats));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->served, 101u);
  EXPECT_EQ(decoded->rejected, 7u);
  EXPECT_EQ(decoded->engine_hits, 99u);
  EXPECT_EQ(decoded->connected_clients, 4u);
}

// ----------------------------------------------------------- live server ---

TEST(ServerTest, PingAndBatchAreByteIdenticalToSerial) {
  TestServer ts;
  Client client;
  ts.connect(client);
  EXPECT_TRUE(client.ping().ok());

  const std::vector<svc::Query> queries = random_batch(test::case_seed(109), 256);
  std::vector<WireResult> results;
  const ClientOutcome outcome = client.evaluate(queries, results);
  ASSERT_TRUE(outcome.ok()) << wire_error_name(outcome.error);

  svc::BatchResults reference;
  ts.engine.evaluate_serial(queries, reference);
  expect_identical(results, reference);

  // Same workload again: every query is now cached and the answer must
  // not change — and the server-side stats must show it.
  const ClientOutcome warm = client.evaluate(queries, results);
  ASSERT_TRUE(warm.ok());
  expect_identical(results, reference);
  const std::optional<WireStats> stats = client.stats();
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->served, 2u);
  EXPECT_GE(stats->engine_hits, queries.size());  // warm pass all hits
}

TEST(ServerTest, MalformedFramesGetTypedErrorsAndConnectionSurvives) {
  TestServer ts;
  Client client;
  ts.connect(client);
  const std::vector<svc::Query> queries = random_batch(test::case_seed(111), 16);

  // Bad version: typed error, then the connection still serves.
  FrameHeader bad_version = batch_header(501);
  bad_version.version = 99;
  ASSERT_TRUE(client.send_raw(encode_frame(bad_version, {})));
  std::optional<Frame> response = client.read_response(501);
  ASSERT_TRUE(response.has_value());
  ASSERT_EQ(response->header.type, FrameType::kError);
  EXPECT_EQ(decode_error(response->payload), WireError::kBadVersion);

  // Bad CRC: typed error, connection survives.
  std::vector<std::uint8_t> corrupt =
      encode_frame(batch_header(502), encode_batch_request(queries));
  corrupt[kHeaderBytes] ^= 0x40;
  ASSERT_TRUE(client.send_raw(corrupt));
  response = client.read_response(502);
  ASSERT_TRUE(response.has_value());
  ASSERT_EQ(response->header.type, FrameType::kError);
  EXPECT_EQ(decode_error(response->payload), WireError::kMalformed);

  // Malformed batch payload (bad query kind): typed error, survives.
  std::vector<std::uint8_t> bad_kind = encode_batch_request(queries);
  bad_kind[8] = 0x7f;
  ASSERT_TRUE(client.send_raw(encode_frame(batch_header(503), bad_kind)));
  response = client.read_response(503);
  ASSERT_TRUE(response.has_value());
  ASSERT_EQ(response->header.type, FrameType::kError);
  EXPECT_EQ(decode_error(response->payload), WireError::kMalformed);

  // After all that abuse the connection still answers real work.
  std::vector<WireResult> results;
  ASSERT_TRUE(client.evaluate(queries, results).ok());
  svc::BatchResults reference;
  ts.engine.evaluate_serial(queries, reference);
  expect_identical(results, reference);
  EXPECT_EQ(ts.server->stats().malformed, 3u);

  // Bad magic desyncs the stream: typed error, then the server hangs up.
  std::vector<std::uint8_t> desync = encode_frame(batch_header(504), {});
  desync[0] ^= 0xff;
  ASSERT_TRUE(client.send_raw(desync));
  response = client.read_response(504);
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(decode_error(response->payload), WireError::kBadMagic);
  EXPECT_FALSE(client.read_response(505).has_value());  // EOF: closed
}

TEST(ServerTest, FullAdmissionQueueAnswersRetryLater) {
  ServerConfig config;
  config.workers = 1;
  config.admission_depth = 2;
  TestServer ts(config);
  ts.server->pause_workers();

  Client client;
  ts.connect(client);
  const std::vector<svc::Query> queries = random_batch(test::case_seed(113), 8);
  const std::vector<std::uint8_t> payload = encode_batch_request(queries);

  // Fill the queue (workers frozen), then overflow it.
  ASSERT_TRUE(client.send_raw(encode_frame(batch_header(601), payload)));
  ASSERT_TRUE(client.send_raw(encode_frame(batch_header(602), payload)));
  ASSERT_TRUE(client.send_raw(encode_frame(batch_header(603), payload)));

  std::optional<Frame> rejection = client.read_response(603);
  ASSERT_TRUE(rejection.has_value());
  ASSERT_EQ(rejection->header.type, FrameType::kError);
  EXPECT_EQ(decode_error(rejection->payload), WireError::kRetryLater);

  // Nothing admitted was dropped: both queued batches complete once the
  // workers thaw, with correct answers.
  ts.server->resume_workers();
  svc::BatchResults reference;
  ts.engine.evaluate_serial(queries, reference);
  for (const std::uint64_t id : {601ull, 602ull}) {
    std::optional<Frame> response = client.read_response(id);
    ASSERT_TRUE(response.has_value());
    ASSERT_EQ(response->header.type, FrameType::kBatchResponse) << id;
    const auto decoded = decode_batch_response(response->payload);
    ASSERT_TRUE(decoded.has_value());
    expect_identical(*decoded, reference);
  }
  EXPECT_EQ(ts.server->stats().rejected, 1u);
  EXPECT_EQ(ts.server->stats().served, 2u);
}

TEST(ServerTest, ExpiredDeadlineGetsTypedTimeout) {
  ServerConfig config;
  config.workers = 1;
  TestServer ts(config);
  ts.server->pause_workers();

  Client client;
  ts.connect(client);
  const std::vector<svc::Query> queries = random_batch(test::case_seed(115), 4);
  ASSERT_TRUE(client.send_raw(encode_frame(batch_header(701, /*deadline_ms=*/5),
                                           encode_batch_request(queries))));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ts.server->resume_workers();

  std::optional<Frame> response = client.read_response(701);
  ASSERT_TRUE(response.has_value());
  ASSERT_EQ(response->header.type, FrameType::kError);
  EXPECT_EQ(decode_error(response->payload), WireError::kDeadlineExceeded);
  EXPECT_EQ(ts.server->stats().timed_out, 1u);

  // A generous deadline still serves normally on the same connection.
  std::vector<WireResult> results;
  EXPECT_TRUE(client.evaluate(queries, results, /*deadline_ms=*/60'000).ok());
}

TEST(ServerTest, StaleSocketIsReclaimedLiveSocketIsRefused) {
  // A leftover path from a crashed server: bound once, never unlinked.
  const std::string path = unique_socket_path();
  {
    svc::QueryEngine engine = make_engine();
    ServerConfig config;
    config.socket_path = path;
    Server crashed(engine, config);
    std::string error;
    ASSERT_TRUE(crashed.start(&error)) << error;
    // Simulate a crash: the process dies without drain; the destructor
    // path we model here still leaves no listener behind.
    crashed.request_drain();
    crashed.wait();
  }
  // Recreate the stale file the way an unclean death leaves it.
  {
    svc::QueryEngine engine = make_engine();
    ServerConfig config;
    config.socket_path = path;
    Server victim(engine, config);
    std::string error;
    ASSERT_TRUE(victim.start(&error)) << error;
    // While it is alive, a second server must refuse to steal the path.
    svc::QueryEngine engine2 = make_engine();
    Server thief(engine2, config);
    std::string thief_error;
    EXPECT_FALSE(thief.start(&thief_error));
    EXPECT_NE(thief_error.find("live server"), std::string::npos) << thief_error;
    victim.request_drain();
    victim.wait();
  }
  // Dead but still on disk (no unlink by the "crashed" owner).
  {
    // Manufacture the stale socket file explicitly.
    svc::QueryEngine engine = make_engine();
    ServerConfig config;
    config.socket_path = path;
    Server server(engine, config);
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;  // reclaims any leftover
    EXPECT_TRUE(socket_alive(path));
    server.request_drain();
    server.wait();
    EXPECT_FALSE(socket_alive(path));
  }
  ::unlink(path.c_str());
}

TEST(ServerTest, GracefulDrainFlushesInFlightAndSavesSnapshot) {
  const std::string snapshot_path = unique_socket_path() + ".snap";
  ServerConfig config;
  config.workers = 1;
  config.admission_depth = 8;
  config.snapshot_out = snapshot_path;
  TestServer ts(config);
  ts.server->pause_workers();

  Client client;
  ts.connect(client);
  const std::vector<svc::Query> queries = random_batch(test::case_seed(117), 32);
  const std::vector<std::uint8_t> payload = encode_batch_request(queries);
  ASSERT_TRUE(client.send_raw(encode_frame(batch_header(801), payload)));
  ASSERT_TRUE(client.send_raw(encode_frame(batch_header(802), payload)));

  // Give the reactor a beat to admit both, then drain under load.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ts.server->request_drain();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));

  // New work during drain is refused with a typed DRAINING error...
  ASSERT_TRUE(client.send_raw(encode_frame(batch_header(803), payload)));
  std::optional<Frame> refused = client.read_response(803);
  ASSERT_TRUE(refused.has_value());
  ASSERT_EQ(refused->header.type, FrameType::kError);
  EXPECT_EQ(decode_error(refused->payload), WireError::kDraining);

  // ...while everything admitted before the drain still completes.
  ts.server->resume_workers();
  svc::BatchResults reference;
  ts.engine.evaluate_serial(queries, reference);
  for (const std::uint64_t id : {801ull, 802ull}) {
    std::optional<Frame> response = client.read_response(id);
    ASSERT_TRUE(response.has_value());
    ASSERT_EQ(response->header.type, FrameType::kBatchResponse) << id;
    const auto decoded = decode_batch_response(response->payload);
    ASSERT_TRUE(decoded.has_value());
    expect_identical(*decoded, reference);
  }

  EXPECT_EQ(ts.server->wait(), 0);
  EXPECT_FALSE(socket_alive(ts.config.socket_path));

  // The drain saved a loadable snapshot that warms a fresh engine.
  svc::QueryEngine warm = make_engine();
  const svc::SnapshotLoadResult loaded = warm.load_snapshot(snapshot_path);
  EXPECT_TRUE(loaded.ok()) << svc::snapshot_error_name(loaded.error);
  EXPECT_GT(loaded.records_loaded, 0u);
  ::unlink(snapshot_path.c_str());
}

// -------------------------------------------------- continuous batching ---

TEST(CoalesceTest, InterleavedConnectionsGetByteIdenticalSlices) {
  // Four connections, four different-size frames, all admitted while the
  // workers are frozen — the single worker must stitch them into one
  // mega-batch on resume, and every connection must still get exactly its
  // own slice, byte-identical to a standalone serial evaluation.
  ServerConfig config;
  config.workers = 1;
  config.admission_depth = 16;
  TestServer ts(config);
  ts.server->pause_workers();

  constexpr int kConns = 4;
  std::vector<Client> clients(kConns);
  std::vector<std::vector<svc::Query>> workloads;
  for (int c = 0; c < kConns; ++c) {
    ts.connect(clients[c]);
    workloads.push_back(random_batch(
        test::case_seed(121) + static_cast<std::uint32_t>(c),
        48 + 16 * static_cast<std::size_t>(c)));
  }
  for (int c = 0; c < kConns; ++c) {
    ASSERT_TRUE(clients[c].send_raw(encode_frame(
        batch_header(900 + static_cast<std::uint64_t>(c)),
        encode_batch_request(workloads[c]))));
  }
  // Give the reactor (which keeps running while workers are paused) time
  // to admit all four frames into the queue.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  ts.server->resume_workers();

  for (int c = 0; c < kConns; ++c) {
    std::optional<Frame> response =
        clients[c].read_response(900 + static_cast<std::uint64_t>(c));
    ASSERT_TRUE(response.has_value()) << c;
    ASSERT_EQ(response->header.type, FrameType::kBatchResponse) << c;
    const auto decoded = decode_batch_response(response->payload);
    ASSERT_TRUE(decoded.has_value()) << c;
    svc::BatchResults reference;
    ts.engine.evaluate_serial(workloads[c], reference);
    expect_identical(*decoded, reference);
  }
  const ServerStats stats = ts.server->stats();
  EXPECT_EQ(stats.served, 4u);
  EXPECT_GE(stats.coalesced_batches, 1u);
  EXPECT_GE(stats.coalesced_frames, 2u);
}

TEST(CoalesceTest, LoneAndPipelinedFramesFlushWithoutLingerStall) {
  // An absurd linger budget must never delay a frame that has nothing to
  // coalesce with: a lone frame flushes immediately (the linger only arms
  // once a batch holds >= 2 frames), and a pipelined burst flushes as soon
  // as every admitted frame is aboard.
  ServerConfig config;
  config.workers = 2;
  config.coalesce_max_queries = 65536;
  config.coalesce_linger_us = 500'000;  // 500 ms: a stall would be obvious
  TestServer ts(config);
  Client client;
  ts.connect(client);
  const std::vector<svc::Query> queries = random_batch(test::case_seed(123), 8);
  svc::BatchResults reference;
  ts.engine.evaluate_serial(queries, reference);

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<WireResult> results;
  ASSERT_TRUE(client.evaluate(queries, results).ok());
  const double lone_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                t0)
          .count();
  expect_identical(results, reference);
  EXPECT_LT(lone_ms, 250.0) << "a lone frame waited for the linger deadline";

  const std::vector<std::uint8_t> payload = encode_batch_request(queries);
  const auto t1 = std::chrono::steady_clock::now();
  for (const std::uint64_t id : {911ull, 912ull, 913ull}) {
    ASSERT_TRUE(client.send_raw(encode_frame(batch_header(id), payload)));
  }
  for (const std::uint64_t id : {911ull, 912ull, 913ull}) {
    std::optional<Frame> response = client.read_response(id);
    ASSERT_TRUE(response.has_value()) << id;
    ASSERT_EQ(response->header.type, FrameType::kBatchResponse) << id;
    const auto decoded = decode_batch_response(response->payload);
    ASSERT_TRUE(decoded.has_value());
    expect_identical(*decoded, reference);
  }
  const double burst_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                t1)
          .count();
  EXPECT_LT(burst_ms, 250.0) << "a pipelined burst waited for the linger";
}

TEST(CoalesceTest, DeadlineRecheckedAfterEvaluation) {
  // A mega-batch that evaluates slowly must not smuggle results past a
  // frame's deadline: the deadline is re-checked AFTER the coalesced
  // evaluation, and an expired frame gets the typed timeout even though
  // its slice was computed.
  ServerConfig config;
  config.workers = 1;
  config.evaluator = [](std::span<const svc::Query> queries,
                        svc::BatchResults& out,
                        std::uint32_t) -> WireError {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    out.resize(queries.size());
    for (std::size_t i = 0; i < queries.size(); ++i) {
      out.values_mut()[i] = static_cast<double>(i);
      out.secondary_mut()[i] = 0.5;
      out.flags_mut()[i] = 0;
    }
    return WireError::kOk;
  };
  TestServer ts(config);
  Client client;
  ts.connect(client);
  const std::vector<svc::Query> queries = random_batch(test::case_seed(125), 4);

  // Deadline far above queue latency but far below the evaluation time:
  // the pre-evaluation check passes, the post-evaluation re-check fires.
  ASSERT_TRUE(client.send_raw(encode_frame(batch_header(921, /*deadline_ms=*/30),
                                           encode_batch_request(queries))));
  std::optional<Frame> response = client.read_response(921);
  ASSERT_TRUE(response.has_value());
  ASSERT_EQ(response->header.type, FrameType::kError);
  EXPECT_EQ(decode_error(response->payload), WireError::kDeadlineExceeded);
  EXPECT_EQ(ts.server->stats().timed_out, 1u);
  EXPECT_EQ(ts.server->stats().served, 0u);

  // Without a deadline the same slow evaluator serves its stub results.
  std::vector<WireResult> results;
  ASSERT_TRUE(client.evaluate(queries, results).ok());
  ASSERT_EQ(results.size(), queries.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    const double expected = static_cast<double>(i);
    EXPECT_EQ(std::memcmp(&results[i].value, &expected, 8), 0) << i;
  }
  EXPECT_EQ(ts.server->stats().served, 1u);
}

TEST(CoalesceTest, BufferPoolReusesAfterWarmup) {
  // The zero-copy response path must hit zero steady-state allocation:
  // after a few same-shaped frames warm the buffer pool, further frames
  // recycle buffers (reuse counter grows, allocation counter is flat).
  ServerConfig config;
  config.workers = 1;
  TestServer ts(config);
  Client client;
  ts.connect(client);
  const std::vector<svc::Query> queries = random_batch(test::case_seed(127), 64);
  std::vector<WireResult> results;
  for (int warm = 0; warm < 8; ++warm) {
    ASSERT_TRUE(client.evaluate(queries, results).ok());
  }

  const ServerStats warmed = ts.server->stats();
  for (int round = 0; round < 16; ++round) {
    ASSERT_TRUE(client.evaluate(queries, results).ok());
  }
  const ServerStats after = ts.server->stats();
  EXPECT_EQ(after.bufpool_allocations, warmed.bufpool_allocations)
      << "steady-state frames still allocated";
  EXPECT_GE(after.bufpool_reuses, warmed.bufpool_reuses + 16);
}

// A soak with N concurrent clients hammering one server — byte-identity
// for every response, then a drain under load that must neither drop an
// admitted request nor deadlock.  Runs under TSan in CI.
TEST(ServerSoakTest, ConcurrentClientsStayByteIdenticalThroughDrain) {
  constexpr int kClients = 4;
  constexpr int kBatchesPerClient = 12;
  constexpr std::size_t kBatchSize = 96;

  ServerConfig config;
  config.workers = 3;
  config.admission_depth = 6;  // small: backpressure really happens
  TestServer ts(config);

  // Per-client workloads and their serial references, precomputed so the
  // concurrent phase only compares.
  std::vector<std::vector<svc::Query>> workloads;
  std::vector<svc::BatchResults> references(kClients);
  for (int c = 0; c < kClients; ++c) {
    workloads.push_back(random_batch(
        test::case_seed(119) + static_cast<std::uint32_t>(c), kBatchSize));
    ts.engine.evaluate_serial(workloads.back(), references[c]);
  }

  std::atomic<int> divergences{0};
  std::atomic<int> transport_failures{0};
  std::atomic<std::uint64_t> completed{0};
  std::atomic<std::uint64_t> draining_refusals{0};

  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Client client;
      std::string error;
      if (!client.connect(ts.config.socket_path, &error)) {
        transport_failures.fetch_add(1);
        return;
      }
      std::vector<WireResult> results;
      for (int b = 0; b < kBatchesPerClient; ++b) {
        const ClientOutcome outcome =
            client.evaluate_with_retry(workloads[c], results);
        if (outcome.error == WireError::kDraining ||
            (outcome.error == WireError::kMalformed && !client.connected())) {
          break;  // server is shutting down under us — expected later
        }
        if (outcome.error == WireError::kMalformed) {
          break;  // disconnected mid-read during drain
        }
        if (!outcome.ok()) {
          transport_failures.fetch_add(1);
          break;
        }
        const svc::BatchResults& reference = references[c];
        bool same = results.size() == reference.size();
        for (std::size_t i = 0; same && i < results.size(); ++i) {
          same = std::memcmp(&results[i].value, &reference.values()[i], 8) == 0 &&
                 std::memcmp(&results[i].secondary, &reference.secondary()[i],
                             8) == 0 &&
                 results[i].flags == reference.flags()[i];
        }
        if (!same) divergences.fetch_add(1);
        completed.fetch_add(1);
      }
    });
  }

  // Let the herd run, then drain while they are still sending.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  ts.server->request_drain();
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(ts.server->wait(), 0);

  EXPECT_EQ(divergences.load(), 0);
  EXPECT_EQ(transport_failures.load(), 0);
  EXPECT_GT(completed.load(), 0u);
  (void)draining_refusals;

  // Every admitted request was answered: served + rejected + timed out +
  // refused-during-drain accounts for every batch frame that arrived.
  const ServerStats stats = ts.server->stats();
  EXPECT_EQ(stats.served, completed.load() + stats.timed_out);
}

// The same drain-under-load soak with coalescing forced on and frames
// small enough that mega-batches really stitch across connections: the
// drain must still answer every admitted frame individually (no response
// lost inside a half-built mega-batch), byte-identical.  Runs under TSan.
TEST(ServerSoakTest, DrainUnderLoadWithCoalescingSmallFrames) {
  constexpr int kClients = 4;
  constexpr int kBatchesPerClient = 24;
  constexpr std::size_t kBatchSize = 24;

  ServerConfig config;
  config.workers = 2;
  config.admission_depth = 8;
  config.coalesce_max_queries = 65536;
  config.coalesce_linger_us = 200;
  TestServer ts(config);

  std::vector<std::vector<svc::Query>> workloads;
  std::vector<svc::BatchResults> references(kClients);
  for (int c = 0; c < kClients; ++c) {
    workloads.push_back(random_batch(
        test::case_seed(129) + static_cast<std::uint32_t>(c), kBatchSize));
    ts.engine.evaluate_serial(workloads.back(), references[c]);
  }

  std::atomic<int> divergences{0};
  std::atomic<int> transport_failures{0};
  std::atomic<std::uint64_t> completed{0};

  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Client client;
      std::string error;
      if (!client.connect(ts.config.socket_path, &error)) {
        transport_failures.fetch_add(1);
        return;
      }
      std::vector<WireResult> results;
      for (int b = 0; b < kBatchesPerClient; ++b) {
        const ClientOutcome outcome =
            client.evaluate_with_retry(workloads[c], results);
        if (outcome.error == WireError::kDraining ||
            outcome.error == WireError::kMalformed) {
          break;  // server is shutting down under us — expected later
        }
        if (!outcome.ok()) {
          transport_failures.fetch_add(1);
          break;
        }
        const svc::BatchResults& reference = references[c];
        bool same = results.size() == reference.size();
        for (std::size_t i = 0; same && i < results.size(); ++i) {
          same = std::memcmp(&results[i].value, &reference.values()[i], 8) == 0 &&
                 std::memcmp(&results[i].secondary, &reference.secondary()[i],
                             8) == 0 &&
                 results[i].flags == reference.flags()[i];
        }
        if (!same) divergences.fetch_add(1);
        completed.fetch_add(1);
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  ts.server->request_drain();
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(ts.server->wait(), 0);

  EXPECT_EQ(divergences.load(), 0);
  EXPECT_EQ(transport_failures.load(), 0);
  EXPECT_GT(completed.load(), 0u);

  const ServerStats stats = ts.server->stats();
  EXPECT_EQ(stats.served, completed.load() + stats.timed_out);
}

}  // namespace
}  // namespace maia::net
