// Unit and property tests for the memory-system simulator: the functional
// cache, the hierarchy, the pointer-chase latency walker (Fig 5), the
// bandwidth models (Figs 4 and 6) and the STREAM kernels.
#include <gtest/gtest.h>

#include <future>
#include <string>
#include <vector>

#include "arch/registry.hpp"
#include "memsim/bandwidth.hpp"
#include "memsim/cache_sim.hpp"
#include "memsim/hierarchy_sim.hpp"
#include "memsim/latency_walker.hpp"
#include "memsim/stream.hpp"
#include "obs/obs.hpp"
#include "sim/thread_pool.hpp"
#include "sim/units.hpp"

namespace maia::mem {
namespace {

using sim::operator""_KiB;
using sim::operator""_MiB;

// ------------------------------------------------------------ cache sim ---

TEST(CacheSim, RejectsBadGeometry) {
  EXPECT_THROW(SetAssociativeCache(1000, 64, 8), std::invalid_argument);
  EXPECT_THROW(SetAssociativeCache(0, 64, 8), std::invalid_argument);
  EXPECT_THROW(SetAssociativeCache(4096, 0, 8), std::invalid_argument);
}

TEST(CacheSim, GeometryArithmetic) {
  SetAssociativeCache c(32_KiB, 64, 8);
  EXPECT_EQ(c.sets(), 64);
  EXPECT_EQ(c.line_bytes(), 64);
  EXPECT_EQ(c.associativity(), 8);
}

TEST(CacheSim, FirstTouchMissesThenHits) {
  SetAssociativeCache c(4096, 64, 2);
  EXPECT_FALSE(c.access(0));
  EXPECT_TRUE(c.access(0));
  EXPECT_TRUE(c.access(63));   // same line
  EXPECT_FALSE(c.access(64));  // next line
  EXPECT_EQ(c.stats().accesses, 4u);
  EXPECT_EQ(c.stats().hits, 2u);
}

TEST(CacheSim, WorkingSetWithinCapacityAlwaysHitsAfterWarmup) {
  SetAssociativeCache c(32_KiB, 64, 8);
  for (std::uint64_t a = 0; a < 32_KiB; a += 64) c.access(a);
  c.reset_stats();
  for (std::uint64_t a = 0; a < 32_KiB; a += 64) c.access(a);
  EXPECT_DOUBLE_EQ(c.stats().hit_rate(), 1.0);
}

TEST(CacheSim, WorkingSetTwiceCapacityThrashesUnderLru) {
  // Sequential sweep over 2x capacity with true LRU: every access misses.
  SetAssociativeCache c(4096, 64, 4);
  for (int lap = 0; lap < 3; ++lap) {
    for (std::uint64_t a = 0; a < 8192; a += 64) c.access(a);
  }
  c.reset_stats();
  for (std::uint64_t a = 0; a < 8192; a += 64) c.access(a);
  EXPECT_DOUBLE_EQ(c.stats().hit_rate(), 0.0);
}

TEST(CacheSim, ConflictMissesWithinOneSet) {
  // 5 lines mapping to the same set of a 4-way cache evict round-robin.
  SetAssociativeCache c(4096, 64, 4);  // 16 sets
  const std::uint64_t set_stride = 64 * 16;
  for (int i = 0; i < 5; ++i) c.access(set_stride * static_cast<std::uint64_t>(i));
  // The first line was LRU-evicted by the fifth.
  EXPECT_FALSE(c.access(0));
}

TEST(CacheSim, LruKeepsRecentlyUsedLine) {
  SetAssociativeCache c(4096, 64, 4);  // 16 sets
  const std::uint64_t s = 64 * 16;
  c.access(0);
  c.access(s);
  c.access(2 * s);
  c.access(3 * s);
  c.access(0);      // refresh line 0
  c.access(4 * s);  // evicts line s (LRU), not line 0
  EXPECT_TRUE(c.probe(0));
  EXPECT_FALSE(c.probe(s));
}

TEST(CacheSim, ProbeDoesNotAllocate) {
  SetAssociativeCache c(4096, 64, 4);
  EXPECT_FALSE(c.probe(0));
  EXPECT_FALSE(c.probe(0));
  EXPECT_FALSE(c.access(0));  // still a miss: probe didn't fill
}

TEST(CacheSim, FlushInvalidatesEverything) {
  SetAssociativeCache c(4096, 64, 4);
  c.access(0);
  c.flush();
  EXPECT_FALSE(c.access(0));
}

// ------------------------------------------------------------ hierarchy ---

TEST(HierarchySim, HostHierarchyHasThreeLevels) {
  CacheHierarchySim h(arch::sandy_bridge_e5_2670());
  EXPECT_EQ(h.level_count(), 3u);
  EXPECT_DOUBLE_EQ(h.level_cycles(0), 4.0);
  EXPECT_DOUBLE_EQ(h.level_cycles(3), 210.0);  // memory
}

TEST(HierarchySim, MissesFallThroughAllLevels) {
  CacheHierarchySim h(arch::sandy_bridge_e5_2670());
  EXPECT_EQ(h.load(0), 3u);  // cold: memory
  EXPECT_EQ(h.load(0), 0u);  // now in L1
}

TEST(HierarchySim, VictimRemainsInOuterLevel) {
  // After exceeding L1, lines still hit in L2.
  CacheHierarchySim h(arch::sandy_bridge_e5_2670());
  for (std::uint64_t a = 0; a < 64_KiB; a += 64) h.load(a);
  // Second sweep: everything fits in L2 (256 KiB) even though L1 thrashed.
  std::size_t l2_or_better = 0;
  const std::size_t lines = 64_KiB / 64;
  for (std::uint64_t a = 0; a < 64_KiB; a += 64) {
    if (h.load(a) <= 1) ++l2_or_better;
  }
  EXPECT_EQ(l2_or_better, lines);
}

TEST(HierarchySim, ThreadsPerCoreShrinkPrivateCaches) {
  CacheHierarchySim h4(arch::xeon_phi_5110p(), 4);
  EXPECT_EQ(h4.level(0).capacity(), 8_KiB);   // 32 KiB / 4
  EXPECT_EQ(h4.level(1).capacity(), 128_KiB); // 512 KiB / 4
}

// -------------------------------------------------------- latency walker ---

TEST(LatencyWalker, HostCurveMatchesFig5Regions) {
  LatencyWalker w(arch::sandy_bridge_e5_2670());
  // Paper Fig 5 plateaus: 1.5 / 4.6 / 15 / 81 ns.
  EXPECT_NEAR(sim::to_nanoseconds(w.walk(16_KiB).avg_latency), 1.5, 0.3);
  EXPECT_NEAR(sim::to_nanoseconds(w.walk(128_KiB).avg_latency), 4.6, 0.9);
  EXPECT_NEAR(sim::to_nanoseconds(w.walk(8_MiB).avg_latency), 15.0, 3.0);
  EXPECT_NEAR(sim::to_nanoseconds(w.walk(128_MiB).avg_latency), 81.0, 8.0);
}

TEST(LatencyWalker, PhiCurveMatchesFig5Regions) {
  LatencyWalker w(arch::xeon_phi_5110p());
  // Paper Fig 5 plateaus: 2.9 / 22.9 / 295 ns.
  EXPECT_NEAR(sim::to_nanoseconds(w.walk(16_KiB).avg_latency), 2.9, 0.5);
  EXPECT_NEAR(sim::to_nanoseconds(w.walk(256_KiB).avg_latency), 22.9, 4.0);
  EXPECT_NEAR(sim::to_nanoseconds(w.walk(8_MiB).avg_latency), 295.0, 25.0);
}

TEST(LatencyWalker, LatencyIsMonotonicInWorkingSet) {
  LatencyWalker w(arch::sandy_bridge_e5_2670());
  const auto curve = w.latency_curve(8_KiB, 64_MiB);
  EXPECT_TRUE(curve.is_non_decreasing(0.05));
}

TEST(LatencyWalker, PhiMemoryLatencyExceedsHostByLargeFactor) {
  LatencyWalker host(arch::sandy_bridge_e5_2670());
  LatencyWalker phi(arch::xeon_phi_5110p());
  const double h = sim::to_nanoseconds(host.walk(64_MiB).avg_latency);
  const double p = sim::to_nanoseconds(phi.walk(64_MiB).avg_latency);
  EXPECT_GT(p / h, 3.0);  // paper: 295 vs 81 ns ~ 3.6x
}

TEST(LatencyWalker, LevelMixSumsToOne) {
  LatencyWalker w(arch::xeon_phi_5110p());
  const auto r = w.walk(1_MiB);
  double sum = 0.0;
  for (double f : r.level_mix) sum += f;
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(LatencyWalker, TransitionRegionMixesTwoLevels) {
  // At 1.5x L1 capacity the mix should contain both L1 and L2 hits.
  LatencyWalker w(arch::sandy_bridge_e5_2670());
  const auto r = w.walk(48_KiB);
  EXPECT_GT(r.level_mix[0] + r.level_mix[1], 0.95);
  EXPECT_GT(r.level_mix[1], 0.05);  // some L2 traffic
}

// ---------------------------------------------------- steady-state walk ---

namespace {

/// Restores the process-wide walk knobs on scope exit so a failing
/// assertion cannot leak a disabled engine into later tests.
struct WalkKnobGuard {
  bool extrapolation = walk_extrapolation_enabled();
  bool memoization = walk_memoization_enabled();
  ~WalkKnobGuard() {
    set_walk_extrapolation(extrapolation);
    set_walk_memoization(memoization);
  }
};

}  // namespace

TEST(SteadyStateWalk, BitIdenticalToBruteForceAcrossRegions) {
  WalkKnobGuard guard;
  set_walk_extrapolation(true);
  const arch::ProcessorModel procs[] = {arch::sandy_bridge_e5_2670(),
                                        arch::xeon_phi_5110p()};
  // L1-resident through memory-bound, including off-power-of-two sizes in
  // the transition regions, and odd iteration counts (the engines must not
  // depend on remaining-lap parity).
  const sim::Bytes working_sets[] = {8_KiB,  48_KiB, 256_KiB, 1_MiB,
                                     3_MiB, 16_MiB, 96_MiB};
  for (const auto& proc : procs) {
    const LatencyWalker w(proc);
    for (sim::Bytes ws : working_sets) {
      for (int iters : {1, 3, 4, 7}) {
        WalkOptions closed_form;
        closed_form.memoize = false;
        WalkOptions lap_compare;
        lap_compare.memoize = false;
        lap_compare.analytic = false;
        WalkOptions brute;
        brute.memoize = false;
        brute.extrapolate = false;

        const WalkResult rc = w.walk(ws, iters, closed_form);
        const WalkResult rl = w.walk(ws, iters, lap_compare);
        const WalkResult rb = w.walk(ws, iters, brute);
        const std::string at =
            proc.name + " ws=" + std::to_string(ws) + " iters=" + std::to_string(iters);

        // Exact equality: both engines must be bit-identical to brute
        // force, not merely close.
        EXPECT_EQ(rc.avg_latency, rb.avg_latency) << at;
        EXPECT_EQ(rl.avg_latency, rb.avg_latency) << at;
        ASSERT_EQ(rc.level_mix.size(), rb.level_mix.size()) << at;
        ASSERT_EQ(rl.level_mix.size(), rb.level_mix.size()) << at;
        for (std::size_t i = 0; i < rb.level_mix.size(); ++i) {
          EXPECT_EQ(rc.level_mix[i], rb.level_mix[i]) << at << " level " << i;
          EXPECT_EQ(rl.level_mix[i], rb.level_mix[i]) << at << " level " << i;
        }

        // Accounting invariants: brute force simulates every lap; the
        // engines cover all laps between simulation and extrapolation.
        EXPECT_EQ(rb.laps_extrapolated, 0u) << at;
        EXPECT_EQ(rb.laps_simulated, static_cast<std::uint64_t>(iters)) << at;
        EXPECT_EQ(rc.laps_simulated + rc.laps_extrapolated,
                  static_cast<std::uint64_t>(iters))
            << at;
        EXPECT_EQ(rl.laps_simulated + rl.laps_extrapolated,
                  static_cast<std::uint64_t>(iters))
            << at;
      }
    }
  }
}

TEST(SteadyStateWalk, PublishedMetricsMatchBruteForce) {
  WalkKnobGuard guard;
  set_walk_extrapolation(true);
  const LatencyWalker w(arch::sandy_bridge_e5_2670());
  const char* keys[] = {"memsim.L1.hits",   "memsim.L1.misses",
                        "memsim.L2.hits",   "memsim.L2.misses",
                        "memsim.L3.hits",   "memsim.L3.misses",
                        "memsim.memory.loads"};
  for (sim::Bytes ws : {32_KiB, 3_MiB, 64_MiB}) {
    WalkOptions fast;
    fast.memoize = false;
    WalkOptions brute;
    brute.memoize = false;
    brute.extrapolate = false;
    const auto before = obs::MetricsRegistry::global().snapshot();
    w.walk(ws, 5, fast);
    const auto mid = obs::MetricsRegistry::global().snapshot();
    w.walk(ws, 5, brute);
    const auto after = obs::MetricsRegistry::global().snapshot();
    for (const char* key : keys) {
      EXPECT_EQ(mid.counter(key) - before.counter(key),
                after.counter(key) - mid.counter(key))
          << key << " ws=" << ws;
    }
  }
}

TEST(SteadyStateWalk, MemoCacheIsThreadSafeAndCoherent) {
  WalkKnobGuard guard;
  set_walk_extrapolation(true);
  set_walk_memoization(true);
  clear_walk_memo();
  const LatencyWalker host(arch::sandy_bridge_e5_2670());
  const LatencyWalker phi(arch::xeon_phi_5110p());
  const LatencyWalker* walkers[] = {&host, &phi};
  const sim::Bytes sizes[] = {16_KiB, 256_KiB, 1_MiB, 8_MiB};

  // Reference values computed without touching the memo.
  WalkOptions nomemo;
  nomemo.memoize = false;
  std::vector<double> expected;
  for (const auto* w : walkers) {
    for (sim::Bytes ws : sizes) {
      expected.push_back(sim::to_nanoseconds(w->walk(ws, 4, nomemo).avg_latency));
    }
  }

  // Hammer the shared memo from the pool: every job walks every key, so
  // insertions race with lookups on all of them (TSan runs this test).
  sim::ThreadPool pool(4);
  std::vector<std::future<bool>> pending;
  for (int j = 0; j < 32; ++j) {
    pending.push_back(pool.submit([&] {
      bool ok = true;
      std::size_t k = 0;
      for (const auto* w : walkers) {
        for (sim::Bytes ws : sizes) {
          ok = ok &&
               sim::to_nanoseconds(w->walk(ws, 4).avg_latency) == expected[k];
          ++k;
        }
      }
      return ok;
    }));
  }
  for (auto& f : pending) EXPECT_TRUE(f.get());
  clear_walk_memo();
}

// ------------------------------------------------------------ bandwidth ---

class BandwidthSweep : public ::testing::TestWithParam<sim::Bytes> {};

TEST_P(BandwidthSweep, ReadExceedsWriteAtEveryLevel) {
  const BandwidthModel host{arch::sandy_bridge_e5_2670(), 2};
  const BandwidthModel phi{arch::xeon_phi_5110p(), 1};
  const sim::Bytes ws = GetParam();
  EXPECT_GE(host.per_core_read(ws), host.per_core_write(ws));
  EXPECT_GE(phi.per_core_read(ws), phi.per_core_write(ws));
}

INSTANTIATE_TEST_SUITE_P(WorkingSets, BandwidthSweep,
                         ::testing::Values(16_KiB, 128_KiB, 4_MiB, 64_MiB));

TEST(Bandwidth, HostPerCoreValuesMatchFig6) {
  const BandwidthModel m{arch::sandy_bridge_e5_2670(), 2};
  EXPECT_NEAR(m.per_core_read(16_KiB) / 1e9, 12.6, 0.1);
  EXPECT_NEAR(m.per_core_write(16_KiB) / 1e9, 10.4, 0.1);
  EXPECT_NEAR(m.per_core_read(64_MiB) / 1e9, 7.5, 0.1);
  EXPECT_NEAR(m.per_core_write(64_MiB) / 1e9, 7.2, 0.1);
}

TEST(Bandwidth, PhiPerCoreValuesMatchFig6) {
  const BandwidthModel m{arch::xeon_phi_5110p(), 1};
  EXPECT_NEAR(m.per_core_read(16_KiB) / 1e6, 1680, 20);
  EXPECT_NEAR(m.per_core_write(16_KiB) / 1e6, 1538, 20);
  EXPECT_NEAR(m.per_core_read(256_KiB) / 1e6, 971, 20);
  EXPECT_NEAR(m.per_core_read(64_MiB) / 1e6, 504, 20);
  EXPECT_NEAR(m.per_core_write(64_MiB) / 1e6, 263, 20);
}

TEST(Bandwidth, PhiStreamSaturatesAt180) {
  const BandwidthModel m{arch::xeon_phi_5110p(), 1};
  EXPECT_NEAR(m.aggregate_stream(59, 1) / 1e9, 180.0, 2.0);
  EXPECT_NEAR(m.aggregate_stream(118, 2) / 1e9, 180.0, 2.0);
}

TEST(Bandwidth, PhiStreamDropsPast128Streams) {
  const BandwidthModel m{arch::xeon_phi_5110p(), 1};
  // Paper Fig 4: beyond 118 threads bandwidth falls to ~140 GB/s.
  EXPECT_NEAR(m.aggregate_stream(177, 3) / 1e9, 140.0, 2.0);
  EXPECT_NEAR(m.aggregate_stream(236, 4) / 1e9, 140.0, 2.0);
}

TEST(Bandwidth, HostStreamSaturatesNear75) {
  const BandwidthModel m{arch::sandy_bridge_e5_2670(), 2};
  EXPECT_NEAR(m.aggregate_stream(16, 1) / 1e9, 75.0, 2.0);
  // No bank-thrash cliff on DDR3.
  EXPECT_NEAR(m.aggregate_stream(32, 2) / 1e9, 75.0, 2.0);
}

TEST(Bandwidth, SingleThreadGetsPerCoreRate) {
  const BandwidthModel m{arch::xeon_phi_5110p(), 1};
  EXPECT_NEAR(m.aggregate_stream(1, 1) / 1e9, 3.05, 0.1);
}

TEST(Bandwidth, ZeroThreadsIsZero) {
  const BandwidthModel m{arch::xeon_phi_5110p(), 1};
  EXPECT_DOUBLE_EQ(m.aggregate_stream(0, 1), 0.0);
}

TEST(Bandwidth, AggregateNeverExceedsPeak) {
  const BandwidthModel m{arch::xeon_phi_5110p(), 1};
  for (int t = 1; t <= 240; t += 7) {
    const int tpc = (t + 58) / 59;
    EXPECT_LE(m.aggregate_stream(t, tpc), m.peak_stream() + 1.0);
  }
}

// --------------------------------------------------------------- stream ---

TEST(StreamKernels, BytesAndFlopsPerIteration) {
  EXPECT_EQ(stream_bytes_per_iteration(StreamKernel::kCopy), 16u);
  EXPECT_EQ(stream_bytes_per_iteration(StreamKernel::kTriad), 24u);
  EXPECT_EQ(stream_flops_per_iteration(StreamKernel::kCopy), 0);
  EXPECT_EQ(stream_flops_per_iteration(StreamKernel::kTriad), 2);
}

TEST(StreamKernels, SequenceVerifiesToMachinePrecision) {
  StreamArrays arrays(1024);
  EXPECT_LT(arrays.run_sequence_and_verify(10), 1e-9);
}

TEST(StreamKernels, TriadComputesExpectedValues) {
  StreamArrays arrays(8);
  arrays.run_kernel(StreamKernel::kTriad);  // a = b + 3*c = 2 + 0 = 2
  for (double v : arrays.a) EXPECT_DOUBLE_EQ(v, 2.0);
}

TEST(StreamKernels, EmptyArraysRejected) {
  EXPECT_THROW(StreamArrays(0), std::invalid_argument);
}

TEST(StreamModelTest, TriadSweepReproducesFig4Shape) {
  const StreamModel phi{BandwidthModel{arch::xeon_phi_5110p(), 1}};
  const auto sweep = phi.triad_sweep({59, 118, 177, 236});
  ASSERT_EQ(sweep.size(), 4u);
  EXPECT_NEAR(sweep[0].y, 180.0, 2.0);
  EXPECT_NEAR(sweep[1].y, 180.0, 2.0);
  EXPECT_NEAR(sweep[2].y, 140.0, 2.0);
  EXPECT_NEAR(sweep[3].y, 140.0, 2.0);
}

TEST(StreamModelTest, PhiBeatsHostOnStream) {
  // The one clear Phi win in the paper: aggregate STREAM bandwidth.
  const StreamModel phi{BandwidthModel{arch::xeon_phi_5110p(), 1}};
  const StreamModel host{BandwidthModel{arch::sandy_bridge_e5_2670(), 2}};
  EXPECT_GT(phi.predict(StreamKernel::kTriad, 118, 2),
            2.0 * host.predict(StreamKernel::kTriad, 16, 1));
}

}  // namespace
}  // namespace maia::mem
