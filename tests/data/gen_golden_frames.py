#!/usr/bin/env python3
"""Regenerates golden_frames_v1.bin, the wire-layout pin for protocol v1.

Every byte here is produced with struct.pack + zlib.crc32 — independently
of the C++ encoders — so transport_test's GoldenFrames case detects ANY
layout drift in src/net/protocol.{hpp,cpp}: header field order, endianness,
CRC polynomial, query/result/stats/admin payload shapes.  If that test
fails, protocol v1 changed on the wire; bump the protocol version and cut
a golden_frames_v2.bin instead of editing this one.

Usage: python3 tests/data/gen_golden_frames.py  (writes beside itself)
"""

import os
import struct
import zlib

HEADER = struct.Struct("<IHHQIIII")  # magic, ver, type, id, deadline, len, crc, rsvd
MAGIC = 0x4149414D  # "MAIA" little-endian
VERSION = 1

BATCH_REQUEST = 0x0001
PING = 0x0002
STATS_REQUEST = 0x0003
REBALANCE = 0x0004
SHARD_ASSIGN = 0x0005
SNAPSHOT_FETCH = 0x0006
BATCH_RESPONSE = 0x8001
STATS_RESPONSE = 0x8003
REBALANCE_DONE = 0x8004
ERROR = 0x80FF

WIRE_QUERY = struct.Struct("<BBBBHHQ")  # kind, device, op, stack, a, b, c


def frame(ftype, request_id, payload=b"", deadline_ms=0):
    crc = zlib.crc32(payload) & 0xFFFFFFFF
    return HEADER.pack(MAGIC, VERSION, ftype, request_id, deadline_ms,
                       len(payload), crc, 0) + payload


def main():
    frames = []

    # 1. kPing, empty payload.
    frames.append(frame(PING, 1))

    # 2. kStatsRequest, empty payload.
    frames.append(frame(STATS_REQUEST, 2))

    # 3. kBatchRequest with one query of each kind, nonzero deadline.
    queries = b"".join((
        WIRE_QUERY.pack(0, 1, 0, 0, 3, 60, 0),        # exec: kernel 3, phi0, 60 thr
        WIRE_QUERY.pack(1, 1, 2, 1, 60, 0, 65536),    # collective: op 2, post-update
        WIRE_QUERY.pack(2, 0, 0, 0, 2, 0, 1048576),   # latency: host, 1 MiB, 2 iters
    ))
    frames.append(frame(BATCH_REQUEST, 3,
                        struct.pack("<II", 3, 0) + queries, deadline_ms=5000))

    # 4. kBatchResponse with two results (value, secondary, flags, rsvd).
    results = (struct.pack("<ddII", 1.5, 2.25, 1, 0) +
               struct.pack("<ddII", 3.75, 0.125, 2, 0))
    frames.append(frame(BATCH_RESPONSE, 3, struct.pack("<II", 2, 0) + results))

    # 5. kError: RETRY_LATER (5) with detail 7.
    frames.append(frame(ERROR, 4, struct.pack("<HHI", 5, 0, 7)))

    # 6. kStatsResponse: the twelve u64 counters, distinct values.
    frames.append(frame(STATS_RESPONSE, 5,
                        struct.pack("<12Q", *range(101, 113))))

    # 7. kRebalance: expect_old=2 -> two new backends (len-prefixed addrs).
    backends = [b"unix:/tmp/a.sock", b"tcp:10.0.0.2:7000"]
    payload = struct.pack("<II", 2, len(backends))
    for b in backends:
        payload += struct.pack("<H", len(b)) + b
    frames.append(frame(REBALANCE, 6, payload))

    # 8. kRebalanceDone: ok, 3 ranges moved, 123456 records, epoch 7.
    frames.append(frame(REBALANCE_DONE, 6,
                        struct.pack("<IIQQ", 0, 3, 123456, 7)))

    # 9. kShardAssign: shard 1 of 3.
    frames.append(frame(SHARD_ASSIGN, 7, struct.pack("<II", 1, 3)))

    # 10. kSnapshotFetch: hash range [0x1000, 0x20000000].
    frames.append(frame(SNAPSHOT_FETCH, 8,
                        struct.pack("<QQ", 0x1000, 0x20000000)))

    out = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                       "golden_frames_v1.bin")
    blob = b"".join(frames)
    with open(out, "wb") as f:
        f.write(blob)
    print(f"wrote {out}: {len(frames)} frames, {len(blob)} bytes")


if __name__ == "__main__":
    main()
