// SuiteRunner: the parallel experiment engine must be a pure speed-up —
// same figures, same tables, same verdicts, any --jobs value.
#include <gtest/gtest.h>

#include <set>

#include "core/runner.hpp"

namespace maia::core {
namespace {

TEST(SuiteRunnerTest, SerialRunCoversEveryFigureInPaperOrder) {
  const SuiteResult suite = SuiteRunner(1).run();
  const auto generators = all_figures();
  ASSERT_EQ(suite.figures.size(), generators.size());
  EXPECT_EQ(suite.figures.front().result.id, "table1");
  EXPECT_EQ(suite.figures.back().result.id, "fig27");
  std::set<std::string> ids;
  for (const auto& f : suite.figures) {
    EXPECT_FALSE(f.result.id.empty());
    EXPECT_GE(f.wall_seconds, 0.0);
    ids.insert(f.result.id);
  }
  EXPECT_EQ(ids.size(), suite.figures.size()) << "duplicate figure ids";
  EXPECT_GT(suite.total_wall_seconds, 0.0);
  EXPECT_EQ(suite.jobs, 1);
}

TEST(SuiteRunnerTest, ParallelRunIsByteIdenticalToSerial) {
  // The determinism statement of the engine: a parallel run may only be
  // faster, never different.  Compares the canonical serialization of
  // every table cell and every check verdict.
  const SuiteResult serial = SuiteRunner(1).run();
  const SuiteResult parallel = SuiteRunner(8).run();
  ASSERT_EQ(serial.figures.size(), parallel.figures.size());
  for (std::size_t i = 0; i < serial.figures.size(); ++i) {
    EXPECT_EQ(fingerprint(serial.figures[i].result),
              fingerprint(parallel.figures[i].result))
        << "figure " << serial.figures[i].result.id
        << " diverged between --jobs 1 and --jobs 8";
  }
  EXPECT_EQ(fingerprint(serial), fingerprint(parallel));
  EXPECT_EQ(serial.checks_passed(), parallel.checks_passed());
  EXPECT_EQ(serial.checks_total(), parallel.checks_total());
}

TEST(SuiteRunnerTest, SubsetRunsPreserveRequestedOrder) {
  const std::vector<FigureResult (*)()> subset = {fig05_latency, table1_system,
                                                  fig04_stream};
  const SuiteResult suite = SuiteRunner(2).run(subset);
  ASSERT_EQ(suite.figures.size(), 3u);
  EXPECT_EQ(suite.figures[0].result.id, "fig05");
  EXPECT_EQ(suite.figures[1].result.id, "table1");
  EXPECT_EQ(suite.figures[2].result.id, "fig04");
}

TEST(SuiteRunnerTest, FingerprintDetectsAnyCellChange) {
  FigureResult a;
  a.id = "figX";
  a.title = "t";
  a.table.set_header({"c"});
  a.table.add_row({"1.00"});
  FigureResult b = a;
  EXPECT_EQ(fingerprint(a), fingerprint(b));
  b.table.add_row({"1.01"});
  EXPECT_NE(fingerprint(a), fingerprint(b));
  b = a;
  b.checks.push_back(check_range("r", 0.0, 1.0, 0.5, ""));
  EXPECT_NE(fingerprint(a), fingerprint(b));
}

}  // namespace
}  // namespace maia::core
