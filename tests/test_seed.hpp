// Reproducible seeding for randomized test cases.
//
// Every randomized case derives its RNG seed from one process-wide base
// seed that is (a) logged to stdout the first time it is used, so a
// failing CI run's inputs can be replayed exactly, and (b) overridable
// via the MAIA_TEST_SEED environment variable, so that replay is one
// `MAIA_TEST_SEED=<logged value> ./svc_test` away.  Without the override
// the base seed is the test binary's default — fixed, so ordinary runs
// stay deterministic, but no longer silent about what they ran with.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>

namespace maia::test {

/// The process-wide base seed: MAIA_TEST_SEED when set (parsed as an
/// unsigned integer), else `fallback`.  Logged once per process.
inline std::uint32_t base_seed(std::uint32_t fallback = 0x5eedba5eu) {
  static const std::uint32_t seed = [fallback] {
    std::uint32_t s = fallback;
    bool overridden = false;
    if (const char* env = std::getenv("MAIA_TEST_SEED")) {
      char* end = nullptr;
      const unsigned long v = std::strtoul(env, &end, 0);
      if (end != env && *end == '\0') {
        s = static_cast<std::uint32_t>(v);
        overridden = true;
      } else {
        std::fprintf(stderr,
                     "test_seed: ignoring unparsable MAIA_TEST_SEED='%s'\n",
                     env);
      }
    }
    std::printf("test_seed: base seed %u%s (set MAIA_TEST_SEED=%u to replay)\n",
                s, overridden ? " (from MAIA_TEST_SEED)" : "", s);
    std::fflush(stdout);
    return s;
  }();
  return seed;
}

/// Per-case seed: the base seed mixed (splitmix64 finalizer) with a
/// case-local salt, so distinct cases draw distinct streams while all
/// remaining functions of the one logged value.
inline std::uint32_t case_seed(std::uint32_t salt) {
  std::uint64_t x = (static_cast<std::uint64_t>(base_seed()) << 32) | salt;
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return static_cast<std::uint32_t>(x);
}

}  // namespace maia::test
