// Cross-module property tests: invariants that must hold over swept
// parameter ranges, regardless of calibration values.
#include <gtest/gtest.h>

#include "arch/registry.hpp"
#include "fabric/mpi_fabric.hpp"
#include "fabric/offload_link.hpp"
#include "io/io_model.hpp"
#include "memsim/bandwidth.hpp"
#include "memsim/latency_walker.hpp"
#include "mpi/collectives.hpp"
#include "npb/openmp_runner.hpp"
#include "offload/runtime.hpp"
#include "omp/constructs.hpp"
#include "omp/schedule.hpp"
#include "perf/exec_model.hpp"
#include "sim/units.hpp"

namespace maia {
namespace {

using arch::DeviceId;
using sim::operator""_B;
using sim::operator""_KiB;
using sim::operator""_MiB;

// ----------------------------------------------------- conservation laws ---

TEST(Property, OffloadReportConservesBytes) {
  // Whatever the program shape, the report's byte totals must equal the
  // sum over regions of invocations x per-invocation bytes.
  const offload::OffloadRuntime rt(arch::maia_node(), DeviceId::kPhi0, 177, 16);
  for (long inv : {1L, 7L, 100L}) {
    for (sim::Bytes in : {0_B, 4_KiB, 16_MiB}) {
      offload::OffloadProgram prog;
      perf::KernelSignature k;
      k.flops = 1e9;
      prog.regions.push_back({"r", in, in / 2, inv, k});
      const auto rep = rt.run(prog);
      EXPECT_EQ(rep.bytes_in, static_cast<sim::Bytes>(inv) * in);
      EXPECT_EQ(rep.bytes_out, static_cast<sim::Bytes>(inv) * (in / 2));
      EXPECT_EQ(rep.invocations, inv);
    }
  }
}

TEST(Property, ScheduleConservesIterationsUnderAllPolicies) {
  const omp::LoopScheduler sched(omp::ThreadTeam(arch::xeon_phi_5110p(), 1, 118));
  for (long trip : {1L, 7L, 236L, 1000L}) {
    for (auto policy : {omp::SchedulePolicy::kStatic, omp::SchedulePolicy::kDynamic,
                        omp::SchedulePolicy::kGuided}) {
      for (long chunk : {0L, 1L, 13L}) {
        const auto r = sched.run_uniform(trip, 1e-7, policy, chunk);
        long total = 0;
        for (long c : r.iterations_per_thread) total += c;
        EXPECT_EQ(total, trip)
            << omp::schedule_name(policy) << " trip=" << trip << " chunk=" << chunk;
      }
    }
  }
}

// ----------------------------------------------------------- monotonicity ---

class MessageSizeSweep : public ::testing::TestWithParam<int> {};

TEST_P(MessageSizeSweep, TransferTimesAreMonotonicInSize) {
  const auto path = static_cast<fabric::Path>(GetParam());
  // Monotone within each provider regime; the CCL->SCIF switch at 256 KB
  // may legitimately *reduce* the time (that is why the stack switches).
  for (auto stack : {fabric::SoftwareStack::kPreUpdate,
                     fabric::SoftwareStack::kPostUpdate}) {
    const fabric::MpiFabricModel m(stack);
    double prev = 0.0;
    auto prev_provider = m.route(1).provider;
    for (sim::Bytes s = 1; s <= 16_MiB; s *= 2) {
      const auto provider = m.route(s).provider;
      const double t = m.transfer_time(path, s);
      if (provider == prev_provider) {
        EXPECT_GE(t, prev) << fabric::stack_name(stack) << " size=" << s;
      }
      prev = t;
      prev_provider = provider;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Paths, MessageSizeSweep, ::testing::Values(0, 1, 2));

TEST(Property, CollectiveTimesMonotonicInRankCount) {
  const mpi::Collectives coll(
      mpi::MpiCostModel(arch::maia_node(), fabric::SoftwareStack::kPostUpdate));
  for (sim::Bytes s : {64_B, 64_KiB}) {
    double prev = 0.0;
    for (int ranks : {8, 16, 32, 59}) {
      const double t = coll.allreduce(DeviceId::kPhi0, ranks, s).time;
      EXPECT_GE(t, prev * 0.999) << ranks;
      prev = t;
    }
  }
}

TEST(Property, ExecTimeNeverIncreasesWithMoreCoresAtFixedTpc) {
  // Adding cores (1 thread each) can only help or saturate.
  perf::KernelSignature sig;
  sig.flops = 1e11;
  sig.dram_bytes = 1e11;
  const auto host = arch::sandy_bridge_e5_2670();
  double prev = 1e30;
  for (int t : {1, 2, 4, 8, 16}) {
    const double now = perf::ExecModel::run(host, 2, t, sig).total;
    EXPECT_LE(now, prev * 1.0001) << t;
    prev = now;
  }
}

TEST(Property, LatencyCurveMonotoneOnBothMachines) {
  for (const auto& proc :
       {arch::sandy_bridge_e5_2670(), arch::xeon_phi_5110p()}) {
    const mem::LatencyWalker w(proc);
    EXPECT_TRUE(w.latency_curve(8_KiB, 32_MiB).is_non_decreasing(0.05))
        << proc.name;
  }
}

// --------------------------------------------------------------- bounds ---

TEST(Property, NothingExceedsThePciePhysicalLimit) {
  // No modelled PCIe transfer may beat the Gen2 x16 raw link rate.
  const auto node = arch::maia_node();
  const double raw = node.pcie_phi0.raw_bandwidth();
  const fabric::MpiFabricModel post(fabric::SoftwareStack::kPostUpdate);
  const fabric::OffloadLink link(node.pcie_phi0, fabric::Path::kHostToPhi0);
  for (sim::Bytes s = 1_KiB; s <= 64_MiB; s *= 2) {
    EXPECT_LE(post.bandwidth(fabric::Path::kHostToPhi0, s), raw);
    EXPECT_LE(link.bandwidth(s), raw);
  }
}

TEST(Property, NoKernelBeatsPeakFlops) {
  const auto host = arch::sandy_bridge_e5_2670();
  const auto phi = arch::xeon_phi_5110p();
  for (double vf : {0.0, 0.5, 1.0}) {
    perf::KernelSignature sig;
    sig.flops = 1e12;
    sig.dram_bytes = 1.0;
    sig.vector_fraction = vf;
    EXPECT_LE(perf::ExecModel::gflops(host, 2, 16, sig), 332.9);
    EXPECT_LE(perf::ExecModel::gflops(phi, 1, 236, sig), 1008.1);
  }
}

TEST(Property, IoNeverBeatsTheNfsServer) {
  const io::IoModel m(arch::maia_node(), fabric::SoftwareStack::kPostUpdate);
  for (auto dev : {DeviceId::kHost, DeviceId::kPhi0, DeviceId::kPhi1}) {
    for (sim::Bytes b = 4_KiB; b <= 64_MiB; b *= 4) {
      EXPECT_LE(m.bandwidth(dev, io::IoDirection::kRead, b), 295e6 * 1.001);
      EXPECT_LE(m.bandwidth(dev, io::IoDirection::kWrite, b), 210e6 * 1.001);
    }
  }
}

TEST(Property, ConstructOverheadsArePositiveAndFinite) {
  for (int threads : {2, 16, 59, 236}) {
    if (threads > 32) {
      const omp::ThreadTeam team(arch::xeon_phi_5110p(), 1, threads);
      for (auto c : omp::all_constructs()) {
        const double o = omp::construct_overhead(c, team);
        EXPECT_GT(o, 0.0);
        EXPECT_LT(o, 1e-3);
      }
    } else {
      const omp::ThreadTeam team(arch::sandy_bridge_e5_2670(), 2, threads);
      for (auto c : omp::all_constructs()) {
        const double o = omp::construct_overhead(c, team);
        EXPECT_GT(o, 0.0);
        EXPECT_LT(o, 1e-4);
      }
    }
  }
}

// ---------------------------------------------------------- determinism ---

TEST(Property, FigureGeneratorsAreDeterministic) {
  const auto a = npb::OpenMpRunner(arch::maia_node())
                     .run(npb::Benchmark::kMG, DeviceId::kPhi0, 177);
  const auto b = npb::OpenMpRunner(arch::maia_node())
                     .run(npb::Benchmark::kMG, DeviceId::kPhi0, 177);
  EXPECT_DOUBLE_EQ(a.gflops, b.gflops);
  const mem::LatencyWalker w1(arch::xeon_phi_5110p());
  const mem::LatencyWalker w2(arch::xeon_phi_5110p());
  EXPECT_DOUBLE_EQ(w1.walk(1_MiB).avg_latency, w2.walk(1_MiB).avg_latency);
}

}  // namespace
}  // namespace maia
