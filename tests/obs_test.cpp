// Observability subsystem tests: shard merge correctness for counters,
// gauges and histograms (including under real ThreadPool concurrency —
// the configuration the TSan job runs), trace-event JSON validity and
// span nesting, ring overflow accounting, and the disabled-path no-op
// guarantees.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <future>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/obs.hpp"
#include "sim/event_queue.hpp"
#include "sim/thread_pool.hpp"

namespace maia::obs {
namespace {

// ------------------------------------------------------------- metrics ---

TEST(MetricsTest, CounterSumsAcrossThreads) {
  MetricsRegistry reg;
  const Counter c = reg.counter("test.counter");

  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.add(1);
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(reg.snapshot().counter("test.counter"), kThreads * kPerThread);
}

TEST(MetricsTest, GaugeMergesByMaximum) {
  MetricsRegistry reg;
  const Gauge g = reg.gauge("test.peak");

  std::vector<std::thread> threads;
  for (int t = 1; t <= 4; ++t) {
    threads.emplace_back([&g, t] {
      g.record(10.0 * t);
      g.record(1.0);  // lower values never pull the watermark down
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_DOUBLE_EQ(reg.snapshot().gauge("test.peak"), 40.0);
}

TEST(MetricsTest, HistogramBucketsMergeBySummation) {
  MetricsRegistry reg;
  const Histogram h = reg.histogram("test.hist", {1.0, 10.0, 100.0});

  // Two threads record the same value set; merged counts must double.
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&h] {
      h.record(0.5);    // bucket 0 (<= 1)
      h.record(5.0);    // bucket 1 (<= 10)
      h.record(50.0);   // bucket 2 (<= 100)
      h.record(500.0);  // overflow
    });
  }
  for (auto& t : threads) t.join();

  const MetricsSnapshot snap = reg.snapshot();
  const HistogramData* data = snap.histogram("test.hist");
  ASSERT_NE(data, nullptr);
  ASSERT_EQ(data->counts.size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(data->counts[0], 2u);
  EXPECT_EQ(data->counts[1], 2u);
  EXPECT_EQ(data->counts[2], 2u);
  EXPECT_EQ(data->counts[3], 2u);
  EXPECT_EQ(data->total, 8u);
  EXPECT_DOUBLE_EQ(data->sum, 2 * (0.5 + 5.0 + 50.0 + 500.0));
  EXPECT_DOUBLE_EQ(data->mean(), data->sum / 8.0);
}

TEST(MetricsTest, PercentileInterpolatesInsideBuckets) {
  MetricsRegistry reg;
  const Histogram h = reg.histogram("pct.hist", {10.0, 20.0, 40.0});
  // Counts per bucket: [2, 4, 2, 2] — 10 samples total.
  for (int i = 0; i < 2; ++i) h.record(5.0);    // (0, 10]
  for (int i = 0; i < 4; ++i) h.record(15.0);   // (10, 20]
  for (int i = 0; i < 2; ++i) h.record(30.0);   // (20, 40]
  for (int i = 0; i < 2; ++i) h.record(100.0);  // overflow

  const MetricsSnapshot snap = reg.snapshot();
  const HistogramData* data = snap.histogram("pct.hist");
  ASSERT_NE(data, nullptr);
  // p50: rank 5 lands 3/4 of the way through the (10, 20] bucket.
  EXPECT_DOUBLE_EQ(data->percentile(0.50), 17.5);
  // p0 asks for the first sample: halfway through (0, 10] with 2 samples.
  EXPECT_DOUBLE_EQ(data->percentile(0.0), 5.0);
  // p95 (rank 9.5) and p100 land in the unbounded overflow bucket, which
  // clamps to the last finite bound rather than inventing an upper edge.
  EXPECT_DOUBLE_EQ(data->percentile(0.95), 40.0);
  EXPECT_DOUBLE_EQ(data->percentile(1.0), 40.0);
  // Out-of-range quantiles clamp instead of misbehaving.
  EXPECT_DOUBLE_EQ(data->percentile(-0.5), data->percentile(0.0));
  EXPECT_DOUBLE_EQ(data->percentile(2.0), data->percentile(1.0));
}

TEST(MetricsTest, PercentileEdgeCases) {
  MetricsRegistry reg;
  // Empty histogram: every percentile is 0.
  (void)reg.histogram("pct.empty", {1.0, 2.0});
  // Single finite bucket: linear interpolation from the origin.
  const Histogram single = reg.histogram("pct.single", {100.0});
  for (int i = 0; i < 4; ++i) single.record(50.0);
  // All samples past the last bound: clamped to it.
  const Histogram over = reg.histogram("pct.over", {8.0});
  for (int i = 0; i < 3; ++i) over.record(1e9);

  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_DOUBLE_EQ(snap.histogram("pct.empty")->percentile(0.99), 0.0);
  EXPECT_DOUBLE_EQ(snap.histogram("pct.single")->percentile(0.50), 50.0);
  EXPECT_DOUBLE_EQ(snap.histogram("pct.single")->percentile(0.25), 25.0);
  EXPECT_DOUBLE_EQ(snap.histogram("pct.over")->percentile(0.50), 8.0);
  EXPECT_DOUBLE_EQ(snap.histogram("pct.over")->percentile(0.99), 8.0);
}

TEST(MetricsTest, JsonExportIncludesPercentileEstimates) {
  MetricsRegistry reg;
  const Histogram h = reg.histogram("pct.json", {10.0});
  h.record(5.0);
  h.record(5.0);
  std::ostringstream os;
  write_metrics_json(os, reg.snapshot());
  const std::string json = os.str();
  EXPECT_NE(json.find("\"p50\": 5"), std::string::npos) << json;
  EXPECT_NE(json.find("\"p95\": 9.5"), std::string::npos) << json;
  EXPECT_NE(json.find("\"p99\": 9.9"), std::string::npos) << json;
}

TEST(MetricsTest, ReRegistrationReturnsTheSameMetric) {
  MetricsRegistry reg;
  const Counter a = reg.counter("dup");
  const Counter b = reg.counter("dup");
  a.add(3);
  b.add(4);
  EXPECT_EQ(reg.snapshot().counter("dup"), 7u);

  // A histogram's bounds are fixed by the first registration.
  (void)reg.histogram("dup.hist", {1.0, 2.0});
  const Histogram h2 = reg.histogram("dup.hist", {99.0});
  h2.record(1.5);
  const MetricsSnapshot snap = reg.snapshot();
  const HistogramData* data = snap.histogram("dup.hist");
  ASSERT_NE(data, nullptr);
  EXPECT_EQ(data->bounds, (std::vector<double>{1.0, 2.0}));
  EXPECT_EQ(data->counts[1], 1u);
}

TEST(MetricsTest, SnapshotLookupOfAbsentNames) {
  MetricsRegistry reg;
  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counter("missing"), 0u);
  EXPECT_DOUBLE_EQ(snap.gauge("missing"), 0.0);
  EXPECT_EQ(snap.histogram("missing"), nullptr);
}

TEST(MetricsTest, ExponentialBounds) {
  const auto b = exponential_bounds(256.0, 4.0, 3);
  ASSERT_EQ(b.size(), 3u);
  EXPECT_DOUBLE_EQ(b[0], 256.0);
  EXPECT_DOUBLE_EQ(b[1], 1024.0);
  EXPECT_DOUBLE_EQ(b[2], 4096.0);
}

TEST(MetricsTest, RuntimeSwitchMakesMacrosNoOps) {
  MetricsRegistry reg;
  const Counter c = reg.counter("switched");
  set_metrics_enabled(false);
  MAIA_OBS_COUNT(c, 5);
  set_metrics_enabled(true);
  MAIA_OBS_COUNT(c, 2);
  EXPECT_EQ(reg.snapshot().counter("switched"), 2u);
}

TEST(MetricsTest, JsonExportContainsEveryKind) {
  MetricsRegistry reg;
  reg.counter("c").add(1);
  reg.gauge("g").record(2.5);
  reg.histogram("h", {1.0}).record(0.5);

  std::ostringstream os;
  write_metrics_json(os, reg.snapshot());
  const std::string json = os.str();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"c\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '\n');
}

// Concurrency stress in the exact shape the instrumented hot paths use:
// ThreadPool workers hammering one counter and one histogram while the
// main thread snapshots concurrently.  Run under TSan in CI.
TEST(MetricsTest, ThreadPoolStressMergesExactly) {
  MetricsRegistry reg;
  const Counter c = reg.counter("stress.counter");
  const Histogram h = reg.histogram("stress.hist", exponential_bounds(1.0, 2.0, 8));

  constexpr int kTasks = 256;
  constexpr int kPerTask = 100;
  {
    sim::ThreadPool pool(4);
    std::vector<std::future<void>> done;
    done.reserve(kTasks);
    for (int t = 0; t < kTasks; ++t) {
      done.push_back(pool.submit([&c, &h, t] {
        for (int i = 0; i < kPerTask; ++i) {
          c.add(1);
          h.record(static_cast<double>(t % 16));
        }
      }));
    }
    // Snapshot while workers are recording: must be race-free (values can
    // lag, never tear).
    (void)reg.snapshot();
    for (auto& f : done) f.get();
  }

  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counter("stress.counter"), kTasks * kPerTask);
  const HistogramData* data = snap.histogram("stress.hist");
  ASSERT_NE(data, nullptr);
  EXPECT_EQ(data->total, static_cast<std::uint64_t>(kTasks) * kPerTask);
}

// --------------------------------------------------------------- tracer ---

/// Extract the value of `key` in the event object that names `name`.
double event_field(const std::string& json, const std::string& name,
                   const std::string& key) {
  const auto at = json.find("\"name\": \"" + name + "\"");
  EXPECT_NE(at, std::string::npos) << name << " not in trace";
  const auto end = json.find('}', at);
  const auto k = json.find("\"" + key + "\": ", at);
  EXPECT_LT(k, end) << key << " not in event " << name;
  return std::stod(json.substr(k + key.size() + 4));
}

TEST(TracerTest, ExportsBalancedNestedSpans) {
  Tracer& tracer = Tracer::global();
  tracer.clear();
  tracer.set_enabled(true);
  {
    ScopedSpan outer("test", "outer");
    {
      ScopedSpan inner("test", "inner", "{\"k\": 1}");
    }
  }
  tracer.set_enabled(false);

  std::ostringstream os;
  tracer.write_chrome_json(os);
  const std::string json = os.str();
  tracer.clear();

  // Structure: a traceEvents array of complete ("ph":"X") events.
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  std::size_t complete = 0;
  for (auto at = json.find("\"ph\": \"X\""); at != std::string::npos;
       at = json.find("\"ph\": \"X\"", at + 1)) {
    ++complete;
  }
  EXPECT_EQ(complete, 2u);
  EXPECT_NE(json.find("{\"k\": 1}"), std::string::npos);

  // The inner span lies inside [ts, ts+dur] of the outer one.
  const double outer_ts = event_field(json, "outer", "ts");
  const double outer_dur = event_field(json, "outer", "dur");
  const double inner_ts = event_field(json, "inner", "ts");
  const double inner_dur = event_field(json, "inner", "dur");
  EXPECT_GE(inner_ts, outer_ts);
  EXPECT_LE(inner_ts + inner_dur, outer_ts + outer_dur);

  // Sorted for Chrome: outer (equal-or-earlier timestamp, longer) first.
  EXPECT_LT(json.find("\"name\": \"outer\""), json.find("\"name\": \"inner\""));
}

TEST(TracerTest, RenameRelabelsTheSpan) {
  Tracer& tracer = Tracer::global();
  tracer.clear();
  tracer.set_enabled(true);
  {
    ScopedSpan span("test", "placeholder");
    span.rename("final-name");
  }
  tracer.set_enabled(false);

  std::ostringstream os;
  tracer.write_chrome_json(os);
  const std::string json = os.str();
  tracer.clear();
  EXPECT_NE(json.find("\"final-name\""), std::string::npos);
  EXPECT_EQ(json.find("\"placeholder\""), std::string::npos);
}

TEST(TracerTest, DisabledSpansRecordNothing) {
  Tracer& tracer = Tracer::global();
  tracer.clear();
  ASSERT_FALSE(tracer.enabled());
  {
    ScopedSpan span("test", "ghost");
  }
  EXPECT_EQ(tracer.stats().recorded, 0u);
}

TEST(TracerTest, RingOverflowCountsDrops) {
  Tracer& tracer = Tracer::global();
  tracer.clear();
  tracer.set_enabled(true);
  constexpr std::uint64_t kExtra = 10;
  for (std::uint64_t i = 0; i < Tracer::kRingCapacity + kExtra; ++i) {
    tracer.record("e", "test", i, 1, "");
  }
  tracer.set_enabled(false);
  const Tracer::Stats stats = tracer.stats();
  tracer.clear();
  EXPECT_EQ(stats.recorded, Tracer::kRingCapacity);
  EXPECT_EQ(stats.dropped, kExtra);
}

// Spans from ThreadPool workers land in per-thread rings; export merges
// them with distinct tids.  Run under TSan in CI.
TEST(TracerTest, ConcurrentSpansFromPoolWorkers) {
  Tracer& tracer = Tracer::global();
  tracer.clear();
  tracer.set_enabled(true);
  constexpr int kTasks = 64;
  {
    sim::ThreadPool pool(4);
    std::vector<std::future<void>> done;
    done.reserve(kTasks);
    for (int t = 0; t < kTasks; ++t) {
      done.push_back(pool.submit([] { ScopedSpan span("test", "work"); }));
    }
    for (auto& f : done) f.get();
  }
  tracer.set_enabled(false);
  const Tracer::Stats stats = tracer.stats();
  tracer.clear();
  // Each task records its span, and the pool itself may add task spans.
  EXPECT_GE(stats.recorded, static_cast<std::uint64_t>(kTasks));
  EXPECT_EQ(stats.dropped, 0u);
}

// ----------------------------------------------- event-queue telemetry ---

TEST(TelemetryTest, EventQueueRunsAccumulateIntoThreadLocal) {
  const sim::EventQueueStats saved = sim::exchange_event_queue_telemetry({});
  {
    sim::EventQueue queue;
    int fired = 0;
    for (int i = 0; i < 5; ++i) {
      queue.schedule_at(static_cast<sim::Seconds>(i), [&fired] { ++fired; });
    }
    queue.run();
    EXPECT_EQ(fired, 5);
    EXPECT_EQ(queue.stats().dispatched, 5u);
    EXPECT_EQ(queue.stats().peak_depth, 5u);
  }
  const sim::EventQueueStats mine = sim::exchange_event_queue_telemetry(saved);
  EXPECT_EQ(mine.dispatched, 5u);
  EXPECT_EQ(mine.peak_depth, 5u);
}

}  // namespace
}  // namespace maia::obs
