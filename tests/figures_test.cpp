// Integration suite: every table/figure generator must produce a non-empty
// table and pass ALL of its paper shape checks.  This is the end-to-end
// statement that the reproduction holds together.
#include <gtest/gtest.h>

#include <sstream>

#include "core/figures.hpp"

namespace maia::core {
namespace {

struct FigureCase {
  const char* name;
  FigureResult (*fn)();
};

class FigureSuite : public ::testing::TestWithParam<FigureCase> {};

TEST_P(FigureSuite, AllShapeChecksPass) {
  const FigureResult fig = GetParam().fn();
  EXPECT_FALSE(fig.id.empty());
  EXPECT_GT(fig.table.rows(), 0u);
  EXPECT_FALSE(fig.checks.empty());
  for (const auto& c : fig.checks) {
    EXPECT_TRUE(c.pass) << fig.id << ": " << c.description << " (paper "
                        << c.expected << ", model " << c.measured << ")";
  }
}

TEST_P(FigureSuite, PrintsWithoutCrashing) {
  const FigureResult fig = GetParam().fn();
  std::ostringstream os;
  fig.print(os);
  EXPECT_NE(os.str().find(fig.id), std::string::npos);
  EXPECT_NE(os.str().find("checks pass"), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(
    AllFigures, FigureSuite,
    ::testing::Values(FigureCase{"table1", table1_system},
                      FigureCase{"fig04", fig04_stream},
                      FigureCase{"fig05", fig05_latency},
                      FigureCase{"fig06", fig06_membw},
                      FigureCase{"fig07", fig07_mpi_latency},
                      FigureCase{"fig08", fig08_mpi_bandwidth},
                      FigureCase{"fig09", fig09_update_gain},
                      FigureCase{"fig10", fig10_sendrecv},
                      FigureCase{"fig11", fig11_bcast},
                      FigureCase{"fig12", fig12_allreduce},
                      FigureCase{"fig13", fig13_allgather},
                      FigureCase{"fig14", fig14_alltoall},
                      FigureCase{"fig15", fig15_omp_sync},
                      FigureCase{"fig16", fig16_omp_sched},
                      FigureCase{"fig17", fig17_io},
                      FigureCase{"fig18", fig18_offload_bw},
                      FigureCase{"fig19", fig19_npb_openmp},
                      FigureCase{"fig20", fig20_npb_mpi},
                      FigureCase{"fig21", fig21_cart3d},
                      FigureCase{"fig22", fig22_overflow_native},
                      FigureCase{"fig23", fig23_overflow_symmetric},
                      FigureCase{"fig24", fig24_loop_collapse},
                      FigureCase{"fig25", fig25_mg_modes},
                      FigureCase{"fig26", fig26_offload_overhead},
                      FigureCase{"fig27", fig27_offload_cost}),
    [](const ::testing::TestParamInfo<FigureCase>& info) {
      return info.param.name;
    });

TEST(FigureRegistry, ContainsEveryExperiment) {
  EXPECT_EQ(all_figures().size(), 25u);
  for (auto* fn : all_figures()) {
    EXPECT_NE(fn, nullptr);
  }
}

TEST(ShapeCheckHelpers, NearRangeAndTrue) {
  EXPECT_TRUE(check_near("x", 10.0, 10.4, 0.05).pass);
  EXPECT_FALSE(check_near("x", 10.0, 12.0, 0.05).pass);
  EXPECT_TRUE(check_range("x", 1.0, 2.0, 1.5).pass);
  EXPECT_FALSE(check_range("x", 1.0, 2.0, 2.5).pass);
  EXPECT_TRUE(check_true("x", "a", "a", true).pass);
}

}  // namespace
}  // namespace maia::core
