// Tests for the simulated MPI runtime: layouts, the point-to-point cost
// model, memory accounting, and the collective algorithms behind Figs
// 10-14.
#include <gtest/gtest.h>

#include "arch/registry.hpp"
#include "fabric/mpi_fabric.hpp"
#include "mpi/collectives.hpp"
#include "mpi/cost_model.hpp"
#include "mpi/layout.hpp"
#include "mpi/memory.hpp"
#include "sim/units.hpp"

namespace maia::mpi {
namespace {

using arch::DeviceId;
using sim::operator""_B;
using sim::operator""_KiB;
using sim::operator""_MiB;

MpiCostModel post_update_cost() {
  return MpiCostModel(arch::maia_node(), fabric::SoftwareStack::kPostUpdate);
}

// --------------------------------------------------------------- layout ---

TEST(Layout, HomogeneousBasics) {
  const auto l = RankLayout::on_device(DeviceId::kPhi0, 236);
  EXPECT_EQ(l.total_ranks(), 236);
  EXPECT_TRUE(l.is_homogeneous());
  EXPECT_EQ(l.ranks_on(DeviceId::kPhi0), 236);
  EXPECT_EQ(l.ranks_on(DeviceId::kHost), 0);
  EXPECT_EQ(l.device_of(0), DeviceId::kPhi0);
  EXPECT_EQ(l.device_of(235), DeviceId::kPhi0);
  EXPECT_THROW(l.device_of(236), std::out_of_range);
}

TEST(Layout, SymmetricSpansDevices) {
  // The paper's best OVERFLOW symmetric config: 16 host ranks x 1 thread,
  // 8 ranks x 28 threads on each Phi.
  const auto l = RankLayout::symmetric({{DeviceId::kHost, 16, 1},
                                        {DeviceId::kPhi0, 8, 28},
                                        {DeviceId::kPhi1, 8, 28}});
  EXPECT_EQ(l.total_ranks(), 32);
  EXPECT_FALSE(l.is_homogeneous());
  EXPECT_EQ(l.device_of(15), DeviceId::kHost);
  EXPECT_EQ(l.device_of(16), DeviceId::kPhi0);
  EXPECT_EQ(l.device_of(31), DeviceId::kPhi1);
}

TEST(Layout, ContextsPerCore) {
  const auto node = arch::maia_node();
  const auto l = RankLayout::symmetric({{DeviceId::kHost, 16, 1},
                                        {DeviceId::kPhi0, 8, 28}});
  EXPECT_EQ(l.contexts_per_core(node, DeviceId::kHost), 1);
  EXPECT_EQ(l.contexts_per_core(node, DeviceId::kPhi0), 4);  // 224 over 60
  EXPECT_EQ(l.contexts_per_core(node, DeviceId::kPhi1), 0);
}

TEST(Layout, RejectsEmptyAndNonPositive) {
  EXPECT_THROW(RankLayout::symmetric({}), std::invalid_argument);
  EXPECT_THROW(RankLayout::on_device(DeviceId::kHost, 0), std::invalid_argument);
}

// ----------------------------------------------------------- cost model ---

TEST(CostModel, PhiOverheadScalesWithClockAndIssueModel) {
  const auto m = post_update_cost();
  const double host = m.software_overhead(DeviceId::kHost, 1);
  const double phi = m.software_overhead(DeviceId::kPhi0, 1);
  // ~2.5x clock ratio x ~1.4 in-order penalty.
  EXPECT_NEAR(phi / host, 3.47, 0.1);
}

TEST(CostModel, OversubscriptionIsQuadratic) {
  const auto m = post_update_cost();
  const double r1 = m.software_overhead(DeviceId::kPhi0, 1);
  const double r4 = m.software_overhead(DeviceId::kPhi0, 4);
  EXPECT_NEAR(r4 / r1, 16.0, 0.01);
}

TEST(CostModel, PairBandwidthCappedByAggregate) {
  const auto m = post_update_cost();
  // One pair gets the per-pair peak; 59 pairs share the aggregate.
  EXPECT_GT(m.pair_bandwidth(DeviceId::kPhi0, 1, 1),
            m.pair_bandwidth(DeviceId::kPhi0, 1, 59));
}

TEST(CostModel, IntraDeviceTimeGrowsWithSize) {
  const auto m = post_update_cost();
  EXPECT_LT(m.intra_device_time(DeviceId::kHost, 1, 16, 1_KiB),
            m.intra_device_time(DeviceId::kHost, 1, 16, 1_MiB));
}

TEST(CostModel, CrossDeviceUsesFabricLatency) {
  const auto m = post_update_cost();
  const double t = m.cross_device_time(DeviceId::kHost, DeviceId::kPhi0, 1, 0);
  // Fabric zero-byte latency (3.3 us) plus both software overheads.
  EXPECT_GT(sim::to_microseconds(t), 3.3);
  EXPECT_LT(sim::to_microseconds(t), 7.0);
}

TEST(CostModel, CrossDeviceReflectsStackUpdate) {
  const MpiCostModel pre(arch::maia_node(), fabric::SoftwareStack::kPreUpdate);
  const MpiCostModel post(arch::maia_node(), fabric::SoftwareStack::kPostUpdate);
  const double tpre =
      pre.cross_device_time(DeviceId::kHost, DeviceId::kPhi1, 1, 4_MiB);
  const double tpost =
      post.cross_device_time(DeviceId::kHost, DeviceId::kPhi1, 1, 4_MiB);
  EXPECT_GT(tpre / tpost, 5.0);  // SCIF 6 GB/s vs CCL 455 MB/s
}

TEST(CostModel, ReduceComputeSlowerOnPhi) {
  const auto m = post_update_cost();
  EXPECT_GT(m.reduce_compute(DeviceId::kPhi0, 1, 1_MiB),
            m.reduce_compute(DeviceId::kHost, 1, 1_MiB));
}

// --------------------------------------------------------------- memory ---

TEST(Memory, SmallJobsFit) {
  const auto node = arch::maia_node();
  EXPECT_TRUE(check_fit(node, DeviceId::kPhi0, 64, 16_MiB).fits);
}

TEST(Memory, RuntimeFootprintAloneNearlyFillsCardAt236Ranks) {
  const auto node = arch::maia_node();
  const auto check = check_fit(node, DeviceId::kPhi0, 236, 0);
  EXPECT_TRUE(check.fits);
  EXPECT_GT(static_cast<double>(check.required) /
                static_cast<double>(check.available),
            0.55);
}

TEST(Memory, HostHasFourTimesTheCapacity) {
  const auto node = arch::maia_node();
  const auto host = check_fit(node, DeviceId::kHost, 16, 1_MiB);
  const auto phi = check_fit(node, DeviceId::kPhi0, 16, 1_MiB);
  EXPECT_NEAR(static_cast<double>(host.available) /
                  static_cast<double>(phi.available),
              4.0, 0.01);
}

// ---------------------------------------------------------- collectives ---

class CollectiveSizes : public ::testing::TestWithParam<sim::Bytes> {};

TEST_P(CollectiveSizes, HostBeatsPhiOnEveryCollective) {
  const Collectives coll(post_update_cost());
  const sim::Bytes size = GetParam();
  const struct {
    CollectiveFn fn;
    const char* name;
  } kCases[] = {
      {&Collectives::sendrecv_ring, "sendrecv"},
      {&Collectives::bcast, "bcast"},
      {&Collectives::allreduce, "allreduce"},
      {&Collectives::allgather, "allgather"},
  };
  for (const auto& c : kCases) {
    const auto host = (coll.*c.fn)(DeviceId::kHost, 16, size);
    const auto phi = (coll.*c.fn)(DeviceId::kPhi0, 59, size);
    EXPECT_LT(host.time, phi.time) << c.name << " size=" << size;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, CollectiveSizes,
                         ::testing::Values(1_B, 1_KiB, 64_KiB, 4_MiB));

TEST(SendRecv, HostToPhiRatioMatchesFig10) {
  // Paper: host 16 ranks beats Phi 59 ranks by 1.3-3.5x, and Phi 236 ranks
  // by 24-54x.
  const Collectives coll(post_update_cost());
  double lo59 = 1e9, hi59 = 0, lo236 = 1e9, hi236 = 0;
  for (sim::Bytes s = 1; s <= 4_MiB; s *= 4) {
    const double host = coll.sendrecv_ring(DeviceId::kHost, 16, s).time;
    const double p59 = coll.sendrecv_ring(DeviceId::kPhi0, 59, s).time;
    const double p236 = coll.sendrecv_ring(DeviceId::kPhi0, 236, s).time;
    lo59 = std::min(lo59, p59 / host);
    hi59 = std::max(hi59, p59 / host);
    lo236 = std::min(lo236, p236 / host);
    hi236 = std::max(hi236, p236 / host);
  }
  EXPECT_NEAR(lo59, 1.3, 0.3);
  EXPECT_NEAR(hi59, 3.5, 0.5);
  EXPECT_GT(lo236, 15.0);
  EXPECT_LT(hi236, 70.0);
}

TEST(SendRecv, OneThreadPerCoreIsBestForCommunication) {
  // Paper: "For communication dominant code, it is beneficial to use only
  // one thread per core on the Phi."
  const Collectives coll(post_update_cost());
  for (sim::Bytes s : {1_KiB, 1_MiB}) {
    EXPECT_LT(coll.sendrecv_ring(DeviceId::kPhi0, 59, s).time,
              coll.sendrecv_ring(DeviceId::kPhi0, 118, s).time);
    EXPECT_LT(coll.sendrecv_ring(DeviceId::kPhi0, 118, s).time,
              coll.sendrecv_ring(DeviceId::kPhi0, 236, s).time);
  }
}

TEST(Bcast, AlgorithmSwitchesAtThreshold) {
  const Collectives coll(post_update_cost());
  EXPECT_EQ(coll.bcast(DeviceId::kHost, 16, 1_KiB).algorithm, "binomial tree");
  EXPECT_EQ(coll.bcast(DeviceId::kHost, 16, 1_MiB).algorithm,
            "scatter + ring allgather");
}

TEST(Bcast, TimeIsMonotonicInSizeWithinAlgorithm) {
  const Collectives coll(post_update_cost());
  double prev = 0.0;
  for (sim::Bytes s = 1; s <= 8_KiB; s *= 2) {
    const double t = coll.bcast(DeviceId::kPhi0, 59, s).time;
    EXPECT_GE(t, prev);
    prev = t;
  }
}

TEST(Allreduce, UsedByNasaCodesScalesLogarithmically) {
  const Collectives coll(post_update_cost());
  const double t16 = coll.allreduce(DeviceId::kHost, 16, 8_KiB).time;
  const double t4 = coll.allreduce(DeviceId::kHost, 4, 8_KiB).time;
  EXPECT_NEAR(t16 / t4, 2.0, 0.3);  // log2 16 / log2 4
}

TEST(Allreduce, NonPowerOfTwoPaysExtraRound) {
  const Collectives coll(post_update_cost());
  const double t16 = coll.allreduce(DeviceId::kHost, 16, 4_KiB).time;
  const double t12 = coll.allreduce(DeviceId::kHost, 12, 4_KiB).time;
  // 12 ranks: 4 rounds + fold-in; 16 ranks: clean 4 rounds — fewer ranks,
  // yet more time.
  EXPECT_GT(t12, t16 * 1.05);
}

TEST(Allgather, JumpAtTheRingSwitch) {
  // Paper Fig 13: time grows smoothly to 1 KB, jumps at 2 KB.
  const Collectives coll(post_update_cost());
  const double t1k = coll.allgather(DeviceId::kPhi0, 59, 1_KiB).time;
  const double t2k = coll.allgather(DeviceId::kPhi0, 59, 2_KiB).time;
  // Doubling payload should less-than-double time within an algorithm;
  // at the switch it much-more-than-doubles.
  EXPECT_GT(t2k / t1k, 3.0);
  const double t512 = coll.allgather(DeviceId::kPhi0, 59, 512_B).time;
  EXPECT_LT(t1k / t512, 2.5);
}

TEST(Allgather, AlgorithmNames) {
  const Collectives coll(post_update_cost());
  EXPECT_EQ(coll.allgather(DeviceId::kHost, 16, 512_B).algorithm,
            "recursive doubling");
  EXPECT_EQ(coll.allgather(DeviceId::kPhi0, 59, 512_B).algorithm, "Bruck");
  EXPECT_EQ(coll.allgather(DeviceId::kPhi0, 59, 8_KiB).algorithm, "ring");
}

TEST(Alltoall, RunsOutOfMemoryBeyond4KiBAt236Ranks) {
  // Paper Fig 14: "For 4 threads per core (236 threads) it could be run
  // only up to a maximum message size of 4 KB."
  const Collectives coll(post_update_cost());
  EXPECT_FALSE(coll.alltoall(DeviceId::kPhi0, 236, 4_KiB).out_of_memory);
  EXPECT_TRUE(coll.alltoall(DeviceId::kPhi0, 236, 8_KiB).out_of_memory);
}

TEST(Alltoall, HostDoesNotRunOutOfMemory) {
  const Collectives coll(post_update_cost());
  EXPECT_FALSE(coll.alltoall(DeviceId::kHost, 16, 4_MiB).out_of_memory);
}

TEST(Alltoall, FiftyNineRanksSurviveLargerMessages) {
  const Collectives coll(post_update_cost());
  EXPECT_FALSE(coll.alltoall(DeviceId::kPhi0, 59, 64_KiB).out_of_memory);
}

TEST(Alltoall, OomResultHasZeroBandwidth) {
  const Collectives coll(post_update_cost());
  const auto r = coll.alltoall(DeviceId::kPhi0, 236, 64_KiB);
  EXPECT_TRUE(r.out_of_memory);
  EXPECT_DOUBLE_EQ(r.bandwidth(64_KiB), 0.0);
}

TEST(Alltoall, MostHostFavourableCollective) {
  // Paper: host/Phi ratio for AlltoAll (8-20x at 1 rank/core) is "much
  // higher than other forms of communication".
  const Collectives coll(post_update_cost());
  const sim::Bytes s = 16_KiB;
  const double ratio_a2a = coll.alltoall(DeviceId::kPhi0, 59, s).time /
                           coll.alltoall(DeviceId::kHost, 16, s).time;
  const double ratio_bcast = coll.bcast(DeviceId::kPhi0, 59, s).time /
                             coll.bcast(DeviceId::kHost, 16, s).time;
  EXPECT_GT(ratio_a2a, ratio_bcast);
}

TEST(Barrier, GrowsWithRanksAndWorseOnPhi) {
  const Collectives coll(post_update_cost());
  EXPECT_LT(coll.barrier(DeviceId::kPhi0, 59).time,
            coll.barrier(DeviceId::kPhi0, 236).time);
  EXPECT_LT(coll.barrier(DeviceId::kHost, 16).time,
            coll.barrier(DeviceId::kPhi0, 59).time);
}

TEST(Sweep, ProducesSeriesWithZeroAtOom) {
  const Collectives coll(post_update_cost());
  const auto s = collective_sweep(coll, &Collectives::alltoall, DeviceId::kPhi0,
                                  236, 1_KiB, 16_KiB, "a2a");
  ASSERT_EQ(s.size(), 5u);
  EXPECT_GT(s[0].y, 0.0);                      // 1 KB runs
  EXPECT_DOUBLE_EQ(s[4].y, 0.0);               // 16 KB fails
}

}  // namespace
}  // namespace maia::mpi
