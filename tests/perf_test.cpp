// Tests for the execution-time predictor: roofline behaviour, the issue
// and MLP threading model, vectorization and gather penalties, Amdahl,
// balance and jitter — the mechanisms behind Figs 19-25.
#include <gtest/gtest.h>

#include "arch/registry.hpp"
#include "perf/exec_model.hpp"
#include "sim/units.hpp"

namespace maia::perf {
namespace {

using sim::operator""_MiB;

KernelSignature compute_bound() {
  KernelSignature s;
  s.name = "compute-bound";
  s.flops = 1e12;
  s.dram_bytes = 1e9;  // intensity 1000
  s.vector_fraction = 1.0;
  return s;
}

KernelSignature memory_bound() {
  KernelSignature s;
  s.name = "memory-bound";
  s.flops = 1e10;
  s.dram_bytes = 1e11;  // intensity 0.1
  s.vector_fraction = 1.0;
  return s;
}

const arch::ProcessorModel kHost = arch::sandy_bridge_e5_2670();
const arch::ProcessorModel kPhi = arch::xeon_phi_5110p();

// ------------------------------------------------------------- roofline ---

TEST(ExecModel, ComputeBoundNearsPeakOnHost) {
  const double gf = ExecModel::gflops(kHost, 2, 16, compute_bound());
  EXPECT_GT(gf, 0.85 * 332.8);
  EXPECT_LE(gf, 332.8 * 1.001);
}

TEST(ExecModel, ComputeBoundNearsPeakOnPhiWithEnoughThreads) {
  const double gf = ExecModel::gflops(kPhi, 1, 177, compute_bound());
  // 59 usable cores of 16.8 Gflop/s = 991 Gflop/s ceiling.
  EXPECT_GT(gf, 0.85 * 991.0);
}

TEST(ExecModel, MemoryBoundTracksStreamBandwidth) {
  const auto b = ExecModel::run(kHost, 2, 16, memory_bound());
  EXPECT_GT(b.memory, b.compute);
  // 1e11 bytes at ~75 GB/s.
  EXPECT_NEAR(b.total, 1e11 / 75e9, 0.15);
}

TEST(ExecModel, PhiBeatsHostOnPureStreamKernels) {
  // The Phi's only decisive win: raw streaming bandwidth (180 vs 75 GB/s).
  const double host = ExecModel::gflops(kHost, 2, 16, memory_bound());
  const double phi = ExecModel::gflops(kPhi, 1, 118, memory_bound());
  EXPECT_GT(phi, 1.5 * host);
}

// -------------------------------------------------------- threading (Phi) ---

TEST(ExecModel, OneThreadPerCoreHalvesPhiCompute) {
  const auto one = ExecModel::run(kPhi, 1, 59, compute_bound());
  const auto two = ExecModel::run(kPhi, 1, 118, compute_bound());
  EXPECT_NEAR(one.compute / two.compute, 2.0, 0.05);
}

TEST(ExecModel, ThreeThreadsPerCoreIsBestForMemoryBoundOnPhi) {
  // Fig 19: "performance on Phi0 is minimal for 1 thread per core and
  // maximal for the 3 threads per core for most of the benchmarks."
  const auto sig = memory_bound();
  const double t1 = ExecModel::gflops(kPhi, 1, 59, sig);
  const double t2 = ExecModel::gflops(kPhi, 1, 118, sig);
  const double t3 = ExecModel::gflops(kPhi, 1, 177, sig);
  const double t4 = ExecModel::gflops(kPhi, 1, 236, sig);
  EXPECT_LT(t1, t2);
  EXPECT_LT(t2, t3);
  EXPECT_GT(t3, t4);
}

TEST(ExecModel, HyperThreadingSlightlyHurtsHostCompute) {
  // Paper (MG): 32 threads is ~6% below 16 threads on the host.
  const double t16 = ExecModel::gflops(kHost, 2, 16, compute_bound());
  const double t32 = ExecModel::gflops(kHost, 2, 32, compute_bound());
  EXPECT_LT(t32, t16);
  EXPECT_GT(t32, 0.90 * t16);
}

TEST(ExecModel, OsCoreSpillHurtsPhi) {
  // Fig 24: 236 threads (59 cores) much better than 240 (60 cores).
  const double t236 = ExecModel::gflops(kPhi, 1, 236, memory_bound());
  const double t240 = ExecModel::gflops(kPhi, 1, 240, memory_bound());
  EXPECT_GT(t236, 1.15 * t240);
}

// -------------------------------------------------------- vectorization ---

TEST(ExecModel, ScalarCodeForfeitsTheWideVectorUnits) {
  auto sig = compute_bound();
  sig.vector_fraction = 0.0;
  const double host = ExecModel::gflops(kHost, 2, 16, sig);
  const double phi = ExecModel::gflops(kPhi, 1, 177, sig);
  // Scalar peak: host 2 x 8 x 2.6 x 2 = 83 Gflop/s; Phi 59 x 2 x 1.05 =
  // 124 Gflop/s — the 512-bit units are idle.
  EXPECT_LT(host, 90.0);
  EXPECT_LT(phi, 130.0);
}

TEST(ExecModel, GatherScatterIsWorseOnPhiThanHostRelatively) {
  // The CG story: indirect addressing wrecks MIC vectorization (the paper
  // measured only +10% from gather/scatter vectorization).
  auto unit = compute_bound();
  auto gath = compute_bound();
  gath.gather_fraction = 1.0;
  const double phi_penalty = ExecModel::gflops(kPhi, 1, 177, unit) /
                             ExecModel::gflops(kPhi, 1, 177, gath);
  const double host_penalty = ExecModel::gflops(kHost, 2, 16, unit) /
                              ExecModel::gflops(kHost, 2, 16, gath);
  EXPECT_GT(phi_penalty, host_penalty);
}

TEST(ExecModel, EffectiveRateBlendsHarmonically) {
  KernelSignature half;
  half.vector_fraction = 0.5;
  const double rate = ExecModel::effective_flop_rate(kHost, half);
  const double peak = kHost.core.peak_flops();
  const double scalar = 2.0 * kHost.core.frequency_hz;
  const double expected = 1.0 / (0.5 / peak + 0.5 / scalar);
  EXPECT_NEAR(rate, expected, 1.0);
}

// ----------------------------------------------------------- Amdahl etc ---

TEST(ExecModel, SerialFractionIsBrutalOnPhi) {
  // Paper §4.3: "Applications with significant serial regions will suffer
  // dramatically because of the relatively slow speed of a Phi core."
  auto sig = compute_bound();
  sig.parallel_fraction = 0.95;
  const double host_drop = ExecModel::gflops(kHost, 2, 16, compute_bound()) /
                           ExecModel::gflops(kHost, 2, 16, sig);
  const double phi_drop = ExecModel::gflops(kPhi, 1, 177, compute_bound()) /
                          ExecModel::gflops(kPhi, 1, 177, sig);
  EXPECT_GT(phi_drop, 2.0 * host_drop);
}

TEST(ExecModel, ShortParallelLoopsWasteThePhiTeam) {
  auto sig = compute_bound();
  sig.parallel_trip = 256;  // vs 236 threads: ~54% balance
  const double with = ExecModel::gflops(kPhi, 1, 236, sig);
  const double without = ExecModel::gflops(kPhi, 1, 236, compute_bound());
  EXPECT_LT(with, 0.62 * without);
}

TEST(ExecModel, PrefetchEfficiencyOnlyAffectsInOrderCores) {
  auto sig = memory_bound();
  sig.prefetch_efficiency = 0.5;
  const auto host_pe = ExecModel::run(kHost, 2, 16, sig);
  const auto host_full = ExecModel::run(kHost, 2, 16, memory_bound());
  EXPECT_NEAR(host_pe.memory, host_full.memory, 1e-9);
  const auto phi_pe = ExecModel::run(kPhi, 1, 177, sig);
  const auto phi_full = ExecModel::run(kPhi, 1, 177, memory_bound());
  EXPECT_NEAR(phi_pe.memory / phi_full.memory, 2.0, 0.01);
}

TEST(ExecModel, OmpRegionOverheadAccumulates) {
  auto sig = memory_bound();
  sig.omp_regions = 1e5;
  const auto with = ExecModel::run(kPhi, 1, 236, sig);
  EXPECT_GT(with.omp_overhead, 0.0);
  EXPECT_GT(with.total, ExecModel::run(kPhi, 1, 236, memory_bound()).total);
}

TEST(ExecModel, BreakdownComponentsSumConsistently) {
  auto sig = compute_bound();
  sig.parallel_fraction = 0.9;
  sig.omp_regions = 10;
  const auto b = ExecModel::run(kPhi, 1, 118, sig);
  EXPECT_GE(b.total,
            std::max(b.compute, b.memory) + b.serial + b.omp_overhead - 1e-12);
}

}  // namespace
}  // namespace maia::perf
