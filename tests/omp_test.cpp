// Tests for the simulated OpenMP runtime: team placement, construct
// overheads (Fig 15), loop scheduling (Fig 16) and collapse arithmetic
// (Fig 24).
#include <gtest/gtest.h>

#include <numeric>

#include "arch/registry.hpp"
#include "omp/constructs.hpp"
#include "omp/loop_balance.hpp"
#include "omp/schedule.hpp"
#include "omp/team.hpp"
#include "sim/units.hpp"

namespace maia::omp {
namespace {

ThreadTeam host_team(int threads) {
  return ThreadTeam(arch::sandy_bridge_e5_2670(), 2, threads);
}
ThreadTeam phi_team(int threads) {
  return ThreadTeam(arch::xeon_phi_5110p(), 1, threads);
}

// ----------------------------------------------------------------- team ---

TEST(Team, PlacementMatchesPaperConvention) {
  // 59/118/177/236 threads use 59 cores at 1-4 threads/core.
  for (int tpc = 1; tpc <= 4; ++tpc) {
    const auto team = phi_team(59 * tpc);
    EXPECT_EQ(team.threads_per_core(), tpc) << 59 * tpc;
    EXPECT_EQ(team.cores_used(), 59);
    EXPECT_FALSE(team.uses_os_core());
  }
}

TEST(Team, MultiplesOf60SpillOntoOsCore) {
  for (int tpc = 1; tpc <= 4; ++tpc) {
    const auto team = phi_team(60 * tpc);
    EXPECT_EQ(team.cores_used(), 60);
    EXPECT_TRUE(team.uses_os_core());
    EXPECT_GT(team.os_jitter_factor(), 1.2);
  }
}

TEST(Team, HostTeams) {
  const auto t16 = host_team(16);
  EXPECT_EQ(t16.threads_per_core(), 1);
  EXPECT_EQ(t16.cores_used(), 16);
  EXPECT_FALSE(t16.uses_os_core());
  const auto t32 = host_team(32);
  EXPECT_EQ(t32.threads_per_core(), 2);
}

TEST(Team, RejectsOversubscriptionBeyondHardware) {
  EXPECT_THROW(phi_team(241), std::invalid_argument);
  EXPECT_THROW(host_team(33), std::invalid_argument);
  EXPECT_THROW(host_team(0), std::invalid_argument);
}

TEST(Team, IssueEfficiencyReflectsInOrderPipeline) {
  EXPECT_DOUBLE_EQ(phi_team(59).issue_efficiency(), 0.5);
  EXPECT_DOUBLE_EQ(phi_team(118).issue_efficiency(), 1.0);
  EXPECT_DOUBLE_EQ(host_team(16).issue_efficiency(), 1.0);
}

// ----------------------------------------------------------- constructs ---

TEST(Constructs, PhiOverheadsAreAnOrderOfMagnitudeHigher) {
  // Paper Fig 15: "almost all the constructs have almost an order of
  // magnitude higher overhead on the Phi than on the host."
  const auto host = host_team(16);
  const auto phi = phi_team(236);
  for (Construct c : all_constructs()) {
    const double ratio = construct_overhead(c, phi) / construct_overhead(c, host);
    EXPECT_GE(ratio, 7.0) << construct_name(c);
    EXPECT_LE(ratio, 30.0) << construct_name(c);
  }
}

TEST(Constructs, ReductionIsMostExpensiveOnPhi) {
  const auto phi = phi_team(236);
  const double reduction = construct_overhead(Construct::kReduction, phi);
  for (Construct c : all_constructs()) {
    if (c == Construct::kReduction) continue;
    EXPECT_GT(reduction, construct_overhead(c, phi)) << construct_name(c);
  }
}

TEST(Constructs, ParallelForAndParallelFollowReduction) {
  // Paper: "The most expensive operation is Reduction, followed by
  // PARALLEL FOR and PARALLEL, whereas ATOMIC is the least expensive."
  const auto phi = phi_team(236);
  const double pf = construct_overhead(Construct::kParallelFor, phi);
  const double p = construct_overhead(Construct::kParallel, phi);
  for (Construct c : all_constructs()) {
    if (c == Construct::kReduction || c == Construct::kParallelFor ||
        c == Construct::kParallel) {
      continue;
    }
    EXPECT_GT(pf, construct_overhead(c, phi)) << construct_name(c);
    EXPECT_GT(p, construct_overhead(c, phi)) << construct_name(c);
  }
}

TEST(Constructs, AtomicIsCheapestEverywhere) {
  for (const auto& team : {host_team(16), phi_team(236)}) {
    const double atomic = construct_overhead(Construct::kAtomic, team);
    for (Construct c : all_constructs()) {
      if (c == Construct::kAtomic) continue;
      EXPECT_LT(atomic, construct_overhead(c, team)) << construct_name(c);
    }
  }
}

TEST(Constructs, HostMagnitudesAreSubMicrosecondToMicrosecond) {
  const auto host = host_team(16);
  EXPECT_NEAR(sim::to_microseconds(construct_overhead(Construct::kParallel, host)),
              1.4, 0.5);
  EXPECT_NEAR(sim::to_microseconds(construct_overhead(Construct::kAtomic, host)),
              0.1, 0.05);
}

TEST(Constructs, OverheadGrowsWithTeamSize) {
  for (Construct c :
       {Construct::kParallel, Construct::kBarrier, Construct::kReduction}) {
    EXPECT_GT(construct_overhead(c, phi_team(236)),
              construct_overhead(c, phi_team(59)))
        << construct_name(c);
  }
}

// ------------------------------------------------------------- schedule ---

TEST(Schedule, EveryIterationExecutedExactlyOnce) {
  const LoopScheduler sched(phi_team(177));
  for (auto policy : {SchedulePolicy::kStatic, SchedulePolicy::kDynamic,
                      SchedulePolicy::kGuided}) {
    const auto r = sched.run_uniform(1000, sim::microseconds(0.1), policy);
    const long total = std::accumulate(r.iterations_per_thread.begin(),
                                       r.iterations_per_thread.end(), 0L);
    EXPECT_EQ(total, 1000) << schedule_name(policy);
  }
}

TEST(Schedule, StaticLowestDynamicHighestGuidedBetween) {
  // Paper Fig 16's ordering, on both devices.
  for (const auto& team : {host_team(16), phi_team(236)}) {
    const LoopScheduler sched(team);
    const long trip = 4096;
    const auto st = sched.run_uniform(trip, sim::microseconds(0.1),
                                      SchedulePolicy::kStatic);
    const auto dy = sched.run_uniform(trip, sim::microseconds(0.1),
                                      SchedulePolicy::kDynamic);
    const auto gu = sched.run_uniform(trip, sim::microseconds(0.1),
                                      SchedulePolicy::kGuided);
    EXPECT_LT(st.overhead(), gu.overhead());
    EXPECT_LT(gu.overhead(), dy.overhead());
  }
}

TEST(Schedule, PhiOverheadOrderOfMagnitudeAboveHost) {
  const LoopScheduler host(host_team(16));
  const LoopScheduler phi(phi_team(236));
  for (auto policy : {SchedulePolicy::kStatic, SchedulePolicy::kDynamic,
                      SchedulePolicy::kGuided}) {
    const auto h = host.run_uniform(4096, sim::microseconds(0.1), policy);
    const auto p = phi.run_uniform(4096, sim::microseconds(0.1), policy);
    EXPECT_GT(p.overhead() / h.overhead(), 5.0) << schedule_name(policy);
  }
}

TEST(Schedule, DynamicDispatchCountEqualsChunkCount) {
  const LoopScheduler sched(host_team(16));
  const auto r =
      sched.run_uniform(1000, sim::microseconds(0.1), SchedulePolicy::kDynamic, 10);
  EXPECT_EQ(r.dispatches, 100);
}

TEST(Schedule, GuidedDispatchesFarFewerThanDynamic) {
  const LoopScheduler sched(phi_team(236));
  const auto dy =
      sched.run_uniform(8192, sim::microseconds(0.1), SchedulePolicy::kDynamic);
  const auto gu =
      sched.run_uniform(8192, sim::microseconds(0.1), SchedulePolicy::kGuided);
  EXPECT_LT(gu.dispatches, dy.dispatches / 4);
}

TEST(Schedule, DynamicBalancesSkewedWorkBetterThanStatic) {
  // A pathologically imbalanced loop: last 10% of iterations are 50x.
  std::vector<double> costs(1000, 1e-7);
  for (std::size_t i = 900; i < 1000; ++i) costs[i] = 5e-6;
  const LoopScheduler sched(host_team(16));
  const auto st = sched.run(costs, SchedulePolicy::kStatic);
  const auto dy = sched.run(costs, SchedulePolicy::kDynamic);
  EXPECT_LT(dy.makespan, st.makespan);
}

TEST(Schedule, MakespanAtLeastIdeal) {
  const LoopScheduler sched(phi_team(118));
  for (auto policy : {SchedulePolicy::kStatic, SchedulePolicy::kDynamic,
                      SchedulePolicy::kGuided}) {
    const auto r = sched.run_uniform(500, sim::microseconds(1), policy);
    EXPECT_GE(r.makespan, r.ideal);
  }
}

TEST(Schedule, EmptyLoopRejected) {
  const LoopScheduler sched(host_team(4));
  EXPECT_THROW(sched.run({}, SchedulePolicy::kStatic), std::invalid_argument);
}

// --------------------------------------------------------- loop balance ---

TEST(LoopBalance, PerfectWhenTripDividesThreads) {
  EXPECT_DOUBLE_EQ(balance_efficiency(472, 236), 1.0);
  EXPECT_DOUBLE_EQ(balance_efficiency(236, 236), 1.0);
}

TEST(LoopBalance, CeilingImbalanceNearThreadCount) {
  // 256 iterations on 236 threads: 20 threads do 2, the rest 1 ->
  // efficiency 256/(236*2) ~ 0.54.
  EXPECT_NEAR(balance_efficiency(256, 236), 256.0 / 472.0, 1e-12);
}

TEST(LoopBalance, FewerIterationsThanThreads) {
  EXPECT_NEAR(balance_efficiency(100, 236), 100.0 / 236.0, 1e-12);
}

TEST(LoopBalance, CollapseRestoresBalance) {
  // The MG mechanism (Fig 24): collapsing 256 x 256 iterations makes the
  // trip count >> threads and efficiency ~1.
  const double before = balance_efficiency(256, 236);
  const double after = balance_efficiency(collapsed_trip({256, 256}), 236);
  EXPECT_LT(before, 0.6);
  EXPECT_GT(after, 0.99);
}

TEST(LoopBalance, HostAlreadyBalanced) {
  // On 16 threads a 256-trip loop is balanced: collapse can only add its
  // index-reconstruction cost.
  EXPECT_DOUBLE_EQ(balance_efficiency(256, 16), 1.0);
}

TEST(LoopBalance, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(balance_efficiency(0, 16), 0.0);
  EXPECT_DOUBLE_EQ(balance_efficiency(16, 0), 0.0);
}

}  // namespace
}  // namespace maia::omp
