// Unit tests for the simulation base library: units, RNG, statistics,
// series utilities, tables, and the discrete-event queue.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <set>
#include <sstream>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/rng.hpp"
#include "sim/series.hpp"
#include "sim/statistics.hpp"
#include "sim/table.hpp"
#include "sim/units.hpp"

namespace maia::sim {
namespace {

// ---------------------------------------------------------------- units ---

TEST(Units, LiteralsProduceExactByteCounts) {
  EXPECT_EQ(1_KiB, 1024u);
  EXPECT_EQ(4_KiB, 4096u);
  EXPECT_EQ(1_MiB, 1048576u);
  EXPECT_EQ(2_GiB, 2147483648u);
}

TEST(Units, TimeConversionsRoundTrip) {
  EXPECT_DOUBLE_EQ(to_nanoseconds(nanoseconds(81.0)), 81.0);
  EXPECT_DOUBLE_EQ(to_microseconds(microseconds(3.3)), 3.3);
  EXPECT_DOUBLE_EQ(to_milliseconds(milliseconds(0.5)), 0.5);
}

TEST(Units, FormatBytesUsesBinaryUnitsForExactMultiples) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(4_KiB), "4 KB");
  EXPECT_EQ(format_bytes(35_MiB), "35 MB");
  EXPECT_EQ(format_bytes(8_GiB), "8 GB");
}

TEST(Units, FormatTimePicksScale) {
  EXPECT_EQ(format_time(nanoseconds(81)), "81.0 ns");
  EXPECT_EQ(format_time(microseconds(3.3)), "3.30 us");
  EXPECT_EQ(format_time(milliseconds(12)), "12.0 ms");
  EXPECT_EQ(format_time(2.0), "2.00 s");
}

TEST(Units, FormatRatePicksScale) {
  EXPECT_EQ(format_rate(180e9), "180 GB/s");
  EXPECT_EQ(format_rate(455e6), "455 MB/s");
}

TEST(Units, FormatFlops) {
  EXPECT_EQ(format_flops(23.5e9), "23.5 Gflop/s");
  EXPECT_EQ(format_flops(301.4e12), "301 Tflop/s");
}

// ------------------------------------------------------------------ rng ---

TEST(Rng, IsDeterministicForEqualSeeds) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.next_u64() == b.next_u64());
  EXPECT_LT(equal, 3);
}

TEST(Rng, DoublesAreInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, DoubleMeanIsNearHalf) {
  Rng r(123);
  RunningStats s;
  for (int i = 0; i < 100000; ++i) s.add(r.next_double());
  EXPECT_NEAR(s.mean(), 0.5, 0.01);
}

TEST(Rng, NextBelowStaysInBound) {
  Rng r(99);
  for (std::uint64_t bound : {1ull, 2ull, 7ull, 1000ull}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(r.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowCoversRange) {
  Rng r(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.next_below(10));
  EXPECT_EQ(seen.size(), 10u);
}

// ----------------------------------------------------------- statistics ---

TEST(RunningStats, MeanAndVarianceMatchClosedForm) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Percentile, MedianOfOddSet) {
  EXPECT_DOUBLE_EQ(percentile({3.0, 1.0, 2.0}, 0.5), 2.0);
}

TEST(Percentile, InterpolatesBetweenOrderStatistics) {
  EXPECT_DOUBLE_EQ(percentile({0.0, 10.0}, 0.25), 2.5);
}

TEST(Percentile, ExtremesAreMinMax) {
  std::vector<double> v{5.0, 1.0, 9.0, 3.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 9.0);
}

TEST(Percentile, RejectsBadInput) {
  EXPECT_THROW(percentile({}, 0.5), std::invalid_argument);
  EXPECT_THROW(percentile({1.0}, 1.5), std::invalid_argument);
}

TEST(GeometricMean, MatchesClosedForm) {
  EXPECT_NEAR(geometric_mean({1.0, 4.0, 16.0}), 4.0, 1e-12);
}

TEST(GeometricMean, RejectsNonPositive) {
  EXPECT_THROW(geometric_mean({1.0, 0.0}), std::invalid_argument);
}

// --------------------------------------------------------------- series ---

TEST(DataSeries, InterpolationIsLinearAndClamped) {
  DataSeries s("bw");
  s.add(1.0, 10.0);
  s.add(3.0, 30.0);
  EXPECT_DOUBLE_EQ(s.interpolate(2.0), 20.0);
  EXPECT_DOUBLE_EQ(s.interpolate(0.0), 10.0);   // clamp left
  EXPECT_DOUBLE_EQ(s.interpolate(10.0), 30.0);  // clamp right
}

TEST(DataSeries, MonotonicityWithSlack) {
  DataSeries s;
  s.add(1, 100);
  s.add(2, 99);  // 1% dip
  s.add(3, 150);
  EXPECT_FALSE(s.is_non_decreasing(0.0));
  EXPECT_TRUE(s.is_non_decreasing(0.02));
}

TEST(DataSeries, MinMaxY) {
  DataSeries s;
  s.add(1, 5);
  s.add(2, -1);
  s.add(3, 9);
  EXPECT_DOUBLE_EQ(s.min_y(), -1.0);
  EXPECT_DOUBLE_EQ(s.max_y(), 9.0);
}

TEST(RatioRangeTest, ComputesPointwiseRatios) {
  DataSeries a("host"), b("phi");
  for (double x : {1.0, 2.0, 3.0}) {
    a.add(x, 10.0 * x);
    b.add(x, 5.0);
  }
  const auto r = ratio_range(a, b);
  EXPECT_DOUBLE_EQ(r.min, 2.0);
  EXPECT_DOUBLE_EQ(r.max, 6.0);
}

TEST(RatioRangeTest, ThrowsWithoutCommonX) {
  DataSeries a, b;
  a.add(1, 1);
  b.add(2, 1);
  EXPECT_THROW(ratio_range(a, b), std::logic_error);
}

TEST(CrossoverTest, FindsInterpolatedCrossing) {
  DataSeries a("a"), b("b");
  // a: 1 -> 3; b flat at 2 => crossing at x = 1.5
  a.add(1.0, 1.0);
  a.add(2.0, 3.0);
  b.add(1.0, 2.0);
  b.add(2.0, 2.0);
  const auto x = crossover_x(a, b);
  ASSERT_TRUE(x.has_value());
  EXPECT_NEAR(*x, 1.5, 1e-12);
}

TEST(CrossoverTest, NoneWhenAlwaysBelow) {
  DataSeries a, b;
  a.add(1, 1);
  a.add(2, 1);
  b.add(1, 2);
  b.add(2, 2);
  EXPECT_FALSE(crossover_x(a, b).has_value());
}

// ---------------------------------------------------------------- table ---

TEST(Table, AlignsColumnsAndCountsRows) {
  TextTable t("demo");
  t.set_header({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "22"});
  EXPECT_EQ(t.rows(), 2u);
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("# demo"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
}

TEST(Table, CsvEmitsCommaSeparated) {
  TextTable t;
  t.set_header({"a", "b"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Table, CellFormats) {
  EXPECT_EQ(cell("%.2f", 3.14159), "3.14");
  EXPECT_EQ(cell("%d x %d", 8, 28), "8 x 28");
}

// ---------------------------------------------------------- event queue ---

TEST(EventQueueTest, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(2.0, [&] { order.push_back(2); });
  q.schedule_at(1.0, [&] { order.push_back(1); });
  q.schedule_at(3.0, [&] { order.push_back(3); });
  EXPECT_DOUBLE_EQ(q.run(), 3.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, EqualTimestampsFireFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  q.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, CallbacksMayScheduleMoreEvents) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(1.0, [&] {
    ++fired;
    q.schedule_in(1.0, [&] { ++fired; });
  });
  EXPECT_DOUBLE_EQ(q.run(), 2.0);
  EXPECT_EQ(fired, 2);
}

TEST(EventQueueTest, ClampsSchedulingIntoThePastToNow) {
  EventQueue q;
  q.schedule_at(5.0, [] {});
  q.run();
  ASSERT_DOUBLE_EQ(q.now(), 5.0);
  // `at < now()` clamps to now(): the event fires, and time never rewinds.
  double fired_at = -1.0;
  q.schedule_at(1.0, [&] { fired_at = q.now(); });
  EXPECT_DOUBLE_EQ(q.run(), 5.0);
  EXPECT_DOUBLE_EQ(fired_at, 5.0);
}

TEST(EventQueueTest, PastEventsFireAfterEventsAlreadyPendingAtNow) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(2.0, [&] {
    order.push_back(0);
    q.schedule_at(2.0, [&] { order.push_back(1); });  // same timestamp
    q.schedule_at(1.0, [&] { order.push_back(2); });  // past: clamps to 2.0
  });
  q.run();
  // The clamped event joins the FIFO at now(), behind the one scheduled
  // at exactly now() first.
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventQueueTest, MoveOnlyCallbacksAreAccepted) {
  EventQueue q;
  auto payload = std::make_unique<int>(41);
  int seen = 0;
  q.schedule_at(1.0, [p = std::move(payload), &seen] { seen = *p + 1; });
  q.run();
  EXPECT_EQ(seen, 42);
}

TEST(EventQueueTest, SameTimestampFifoSurvivesReset) {
  EventQueue q;
  q.schedule_at(3.0, [] {});
  q.run();
  q.reset();
  // Regression: reset() must restart the FIFO sequence counter as well as
  // the clock, so equal-timestamp insertion order still holds afterwards.
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    q.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  q.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(EventQueueTest, RunUntilStopsAtDeadline) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(1.0, [&] { ++fired; });
  q.schedule_at(10.0, [&] { ++fired; });
  q.run_until(5.0);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.pending(), 1u);
  q.run();
  EXPECT_EQ(fired, 2);
}

TEST(EventQueueTest, ResetClearsClockAndEvents) {
  EventQueue q;
  q.schedule_at(1.0, [] {});
  q.run();
  q.reset();
  EXPECT_DOUBLE_EQ(q.now(), 0.0);
  EXPECT_EQ(q.pending(), 0u);
}

}  // namespace
}  // namespace maia::sim
