// Tests for the application proxies: zone systems, load balancing, the
// real numerical kernels (zone ADI solver, overset interpolation, Euler
// FV), and the Fig 21/22/23 performance behaviour.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "apps/cart3d.hpp"
#include "apps/euler_kernel.hpp"
#include "apps/loadbalance.hpp"
#include "apps/overflow.hpp"
#include "apps/zone_solver.hpp"
#include "apps/zones.hpp"
#include "arch/registry.hpp"

namespace maia::apps {
namespace {

using arch::DeviceId;

// ---------------------------------------------------------------- zones ---

TEST(Zones, Dlrf6DatasetsMatchThePaper) {
  const auto large = make_dlrf6_large();
  EXPECT_EQ(large.zones.size(), 23u);
  EXPECT_EQ(large.total_points(), 35'900'000);
  const auto medium = make_dlrf6_medium();
  EXPECT_EQ(medium.zones.size(), 23u);
  EXPECT_EQ(medium.total_points(), 10'800'000);
}

TEST(Zones, LargeCaseExceedsOnePhiCard) {
  // The paper: "the DLRF6-Large case is too large to run on a single Phi."
  const auto large = make_dlrf6_large();
  EXPECT_GT(large.data_bytes(), sim::Bytes{8} * 1024 * 1024 * 1024);
  const auto medium = make_dlrf6_medium();
  EXPECT_LT(medium.data_bytes(), sim::Bytes{8} * 1024 * 1024 * 1024);
}

TEST(Zones, HeavyTailedSizes) {
  const auto set = make_dlrf6_large();
  EXPECT_GT(set.zones.front().points, 5 * set.zones.back().points);
  EXPECT_GT(set.max_zone_points(), set.total_points() / 23);
}

TEST(Zones, SurfaceScalesSubLinearly) {
  Zone small{1'000'000}, big{8'000'000};
  EXPECT_NEAR(static_cast<double>(big.surface_points()) / small.surface_points(),
              4.0, 0.1);  // (8x volume)^(2/3) = 4x surface
}

TEST(Zones, RejectsBadParameters) {
  EXPECT_THROW(make_zone_set("x", 0, 100), std::invalid_argument);
  EXPECT_THROW(make_zone_set("x", 10, 5), std::invalid_argument);
}

// --------------------------------------------------------- load balance ---

TEST(LoadBalance, HomogeneousRanksSplitEvenly) {
  const std::vector<long> zones(16, 100);
  const std::vector<RankSlot> ranks(4, RankSlot{1.0});
  const auto a = assign_zones(zones, ranks);
  EXPECT_NEAR(a.imbalance(), 1.0, 1e-9);
  for (double t : a.rank_time) EXPECT_DOUBLE_EQ(t, 400.0);
}

TEST(LoadBalance, FasterRankGetsMoreWork) {
  const std::vector<long> zones(20, 100);
  const std::vector<RankSlot> ranks{{3.0}, {1.0}};
  const auto a = assign_zones(zones, ranks);
  long fast = 0, slow = 0;
  for (std::size_t z = 0; z < zones.size(); ++z) {
    (a.zone_to_rank[z] == 0 ? fast : slow) += zones[z];
  }
  EXPECT_NEAR(static_cast<double>(fast) / slow, 3.0, 0.5);
}

TEST(LoadBalance, OneGiantZoneCannotBeBalanced) {
  const std::vector<long> zones{1000, 10, 10, 10};
  const std::vector<RankSlot> ranks(4, RankSlot{1.0});
  const auto a = assign_zones(zones, ranks);
  EXPECT_GT(a.imbalance(), 3.0);  // the giant zone pins one rank
}

TEST(LoadBalance, SplittingRestoresBalance) {
  ZoneSet set;
  set.zones = {{1000}, {10}, {10}, {10}};
  const auto pieces = split_zones(set, 100);
  long total = 0;
  for (long p : pieces) {
    EXPECT_LE(p, 100);
    total += p;
  }
  EXPECT_EQ(total, 1030);
  const std::vector<RankSlot> ranks(4, RankSlot{1.0});
  EXPECT_LT(assign_zones(pieces, ranks).imbalance(), 1.2);
}

TEST(LoadBalance, RejectsEmptyRankList) {
  EXPECT_THROW(assign_zones({10}, {}), std::invalid_argument);
}

// ------------------------------------------------------ zone ADI solver ---

TEST(ZoneSolver, ConvergesToManufacturedSolution) {
  const ZoneSolver solver(10);
  const auto r = solver.run(200, 0.3);
  EXPECT_LT(r.residual_history.back(), 1e-8 * r.residual_history.front());
  EXPECT_LT(r.solution_error, 1e-6);
}

TEST(ZoneSolver, ResidualDecreasesMonotonically) {
  const ZoneSolver solver(9);
  const auto r = solver.run(40, 0.3);
  for (std::size_t i = 2; i < r.residual_history.size(); ++i) {
    EXPECT_LE(r.residual_history[i], r.residual_history[i - 1] * 1.001);
  }
}

TEST(ZoneSolver, RejectsTinyZones) {
  EXPECT_THROW(ZoneSolver(4), std::invalid_argument);
}

TEST(Tridiagonal, SolvesAgainstDirectMultiplication) {
  const double lo = -0.4, di = 2.2, up = -0.6;
  const std::size_t n = 15;
  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = std::sin(static_cast<double>(i));
  std::vector<double> rhs(n);
  for (std::size_t i = 0; i < n; ++i) {
    rhs[i] = di * x[i];
    if (i > 0) rhs[i] += lo * x[i - 1];
    if (i + 1 < n) rhs[i] += up * x[i + 1];
  }
  solve_tridiagonal(lo, di, up, rhs);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(rhs[i], x[i], 1e-11);
}

TEST(OversetInterpolation, ReproducesLinearFields) {
  // Trilinear donor interpolation is exact on linear functions — the
  // consistency requirement of Chimera boundary coupling.
  ZoneField donor(9);
  for (std::size_t i = 0; i < 9; ++i) {
    for (std::size_t j = 0; j < 9; ++j) {
      for (std::size_t k = 0; k < 9; ++k) {
        const double x = i / 8.0, y = j / 8.0, z = k / 8.0;
        donor.at(i, j, k) = 2.0 * x - 3.0 * y + 0.5 * z + 1.0;
      }
    }
  }
  for (double x : {0.11, 0.5, 0.93}) {
    for (double y : {0.2, 0.77}) {
      const double got = donor.sample(x, y, 0.35);
      EXPECT_NEAR(got, 2.0 * x - 3.0 * y + 0.5 * 0.35 + 1.0, 1e-12);
    }
  }
}

TEST(OversetInterpolation, ClampsOutsideTheDonorBox) {
  ZoneField donor(5);
  EXPECT_NO_THROW(donor.sample(-0.5, 2.0, 0.5));
}

// ------------------------------------------------------------ Euler FV ---

TEST(Euler, ConservesMassAndEnergy) {
  const EulerSolver solver(200);
  EulerState s = solver.sod_initial();
  const double m0 = s.total_mass(solver.dx());
  const double e0 = s.total_energy(solver.dx());
  solver.advance(s, 0.1);
  // Transmissive boundaries leak only after waves arrive (~t=0.25).
  EXPECT_NEAR(s.total_mass(solver.dx()), m0, 1e-10);
  EXPECT_NEAR(s.total_energy(solver.dx()), e0, 1e-10);
}

TEST(Euler, DensityStaysPositive) {
  const EulerSolver solver(200);
  EulerState s = solver.sod_initial();
  solver.advance(s, 0.2);
  for (double r : s.rho) EXPECT_GT(r, 0.0);
}

TEST(Euler, ShockMovesRightExpansionLeft) {
  const EulerSolver solver(400);
  EulerState s = solver.sod_initial();
  solver.advance(s, 0.2);
  // Sod at t=0.2: contact near x~0.69, shock near x~0.85; density between
  // the initial states in the star region.
  const auto at = [&](double x) {
    return s.rho[static_cast<std::size_t>(x * 400)];
  };
  EXPECT_LT(at(0.75), 0.5);   // star region density ~0.26-0.42
  EXPECT_GT(at(0.75), 0.2);
  EXPECT_NEAR(at(0.95), 0.125, 0.01);  // undisturbed right state
  EXPECT_NEAR(at(0.05), 1.0, 0.01);    // undisturbed left state
}

TEST(Euler, VelocityInStarRegionNearReference) {
  // Sod's exact star-region velocity is ~0.927.
  const EulerSolver solver(800);
  EulerState s = solver.sod_initial();
  solver.advance(s, 0.2);
  const std::size_t i = static_cast<std::size_t>(0.75 * 800);
  EXPECT_NEAR(s.mom[i] / s.rho[i], 0.927, 0.06);
}

TEST(Euler, RejectsTooFewCells) {
  EXPECT_THROW(EulerSolver(5), std::invalid_argument);
}

// ------------------------------------------------------------- Fig 21 ------

TEST(Cart3d, HostTwiceTheBestPhi) {
  // Paper: "Host performance is two times better than the best result on
  // Phi."
  const Cart3dModel model(arch::maia_node());
  const auto w = onera_m6();
  const double host = model.gflops(w, DeviceId::kHost, 16);
  double best_phi = 0.0;
  for (int t : {59, 118, 177, 236}) {
    best_phi = std::max(best_phi, model.gflops(w, DeviceId::kPhi0, t));
  }
  EXPECT_NEAR(host / best_phi, 2.0, 0.35);
}

TEST(Cart3d, FourThreadsPerCoreIsOptimalOnPhi) {
  // Paper: "Performance on Phi is the best for 4 threads per core ...
  // unlike the NPBs where 3 is generally the best value."
  const Cart3dModel model(arch::maia_node());
  const auto w = onera_m6();
  const auto sweep = model.thread_sweep(w, DeviceId::kPhi0, {59, 118, 177, 236});
  EXPECT_TRUE(sweep.is_non_decreasing());
  EXPECT_GT(sweep[3].y, sweep[2].y);
}

// ------------------------------------------------------------- Fig 22 ------

TEST(Overflow, HostBestIs16x1AndWorstIs1x16) {
  const OverflowModel model(arch::maia_node(), fabric::SoftwareStack::kPostUpdate);
  const auto medium = make_dlrf6_medium();
  std::vector<double> times;
  for (auto [r, t] : std::vector<std::pair<int, int>>{
           {16, 1}, {8, 2}, {4, 4}, {2, 8}, {1, 16}}) {
    times.push_back(model.step_time(medium, {{DeviceId::kHost, r, t}}).total);
  }
  EXPECT_EQ(std::min_element(times.begin(), times.end()), times.begin());
  EXPECT_EQ(std::max_element(times.begin(), times.end()), times.end() - 1);
}

TEST(Overflow, PhiBest8x28AndWorst4x14) {
  // Paper: best 8x28 (224 threads, ~4/core), worst 4x14 (56 threads).
  const OverflowModel model(arch::maia_node(), fabric::SoftwareStack::kPostUpdate);
  const auto medium = make_dlrf6_medium();
  std::vector<std::pair<int, int>> configs{{4, 14}, {8, 14}, {4, 28}, {8, 28}};
  std::vector<double> times;
  for (auto [r, t] : configs) {
    times.push_back(model.step_time(medium, {{DeviceId::kPhi0, r, t}}).total);
  }
  const auto best = std::min_element(times.begin(), times.end());
  const auto worst = std::max_element(times.begin(), times.end());
  EXPECT_EQ(best - times.begin(), 3);   // 8x28
  EXPECT_EQ(worst - times.begin(), 0);  // 4x14
}

TEST(Overflow, HostOutperformsPhiByRoughly1Point8) {
  const OverflowModel model(arch::maia_node(), fabric::SoftwareStack::kPostUpdate);
  const auto medium = make_dlrf6_medium();
  const double host =
      model.step_time(medium, {{DeviceId::kHost, 16, 1}}).total;
  const double phi =
      model.step_time(medium, {{DeviceId::kPhi0, 8, 28}}).total;
  EXPECT_NEAR(phi / host, 1.8, 0.45);
}

TEST(Overflow, MoreThreadsHelpOnPhiHurtOnHost) {
  // "On the host, performance decreases as the number of OpenMP threads
  // increases ... on the Phi, performance increases."
  const OverflowModel model(arch::maia_node(), fabric::SoftwareStack::kPostUpdate);
  const auto medium = make_dlrf6_medium();
  EXPECT_LT(model.step_time(medium, {{DeviceId::kHost, 16, 1}}).total,
            model.step_time(medium, {{DeviceId::kHost, 2, 8}}).total);
  EXPECT_GT(model.step_time(medium, {{DeviceId::kPhi0, 4, 14}}).total,
            model.step_time(medium, {{DeviceId::kPhi0, 8, 28}}).total);
}

// ------------------------------------------------------------- Fig 23 ------

TEST(OverflowSymmetric, Roughly1Point9xOverHostOnly) {
  const OverflowModel model(arch::maia_node(), fabric::SoftwareStack::kPostUpdate);
  const auto large = make_dlrf6_large();
  const double host_only =
      model.step_time(large, {{DeviceId::kHost, 16, 1}}).total;
  const double symmetric =
      model.step_time(large, OverflowModel::symmetric_config(8, 28)).total;
  EXPECT_NEAR(host_only / symmetric, 1.9, 0.25);
}

TEST(OverflowSymmetric, PostUpdateGainWithinPaperRange) {
  // Fig 23: the software update improves symmetric-mode steps by 2-28%.
  const auto large = make_dlrf6_large();
  const OverflowModel pre(arch::maia_node(), fabric::SoftwareStack::kPreUpdate);
  const OverflowModel post(arch::maia_node(), fabric::SoftwareStack::kPostUpdate);
  const auto config = OverflowModel::symmetric_config(8, 28);
  const double gain = pre.step_time(large, config).total /
                      post.step_time(large, config).total;
  EXPECT_GT(gain, 1.02);
  EXPECT_LT(gain, 1.30);
}

TEST(OverflowSymmetric, StillLosesToTwoHosts) {
  // "When compared to using two hosts the best host+Phi0+Phi1 result is
  // still worse."  Model the second host as a doubled host group.
  const OverflowModel model(arch::maia_node(), fabric::SoftwareStack::kPostUpdate);
  const auto large = make_dlrf6_large();
  const double symmetric =
      model.step_time(large, OverflowModel::symmetric_config(8, 28)).total;
  const double two_hosts =
      model.step_time(large, {{DeviceId::kHost, 32, 1}}).total / 2.0;
  // (Halving a 32-rank single-host run approximates host1+host2 with ideal
  // inter-node scaling.)
  EXPECT_GT(symmetric, two_hosts);
}

TEST(OverflowSymmetric, BalancerFeedsAllThreeDevices) {
  const OverflowModel model(arch::maia_node(), fabric::SoftwareStack::kPostUpdate);
  const auto large = make_dlrf6_large();
  const auto step =
      model.step_time(large, OverflowModel::symmetric_config(8, 28));
  ASSERT_EQ(step.points_per_group.size(), 3u);
  for (long pts : step.points_per_group) EXPECT_GT(pts, 1'000'000);
  // The host (faster device) carries the largest share.
  EXPECT_GT(step.points_per_group[0], step.points_per_group[1]);
  EXPECT_GT(step.points_per_group[0], step.points_per_group[2]);
}

TEST(OverflowSymmetric, ImbalanceStaysModestWithSplitting) {
  const OverflowModel model(arch::maia_node(), fabric::SoftwareStack::kPostUpdate);
  const auto large = make_dlrf6_large();
  const auto step =
      model.step_time(large, OverflowModel::symmetric_config(8, 28));
  EXPECT_LT(step.assignment_imbalance, 1.2);
}

}  // namespace
}  // namespace maia::apps
