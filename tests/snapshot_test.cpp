// Tests for the snapshot warm-start path (svc/snapshot.{hpp,cpp} and the
// QueryEngine save/load API):
//
//   * format round-trip — write_snapshot/read_snapshot preserve every
//     record bit-for-bit, including an empty cache;
//   * fault injection via CorruptingStream — truncation at EVERY byte
//     boundary, a bit-flip sweep over EVERY bit of the image (header
//     flips must map to the field's reason code, payload flips to
//     kBadCrc), and spliced files — all rejected, none crash, and a
//     rejected parse returns no records;
//   * golden fixture — tests/data/golden_snapshot_v1.bin was produced by
//     an independent implementation of the documented v1 layout; if this
//     test breaks, the format changed and kSnapshotVersion must be
//     bumped deliberately;
//   * engine-level fallback — every corruption class leaves a loading
//     engine cold (still byte-identical to serial) and is counted under
//     svc.snapshot.rejected[.<reason>];
//   * concurrency (run under TSan in CI) — save_snapshot racing
//     concurrent evaluate() batches, two engines loading one file
//     simultaneously, and a load racing an evaluate on the same engine.
//
// Randomized cases seed from the logged, MAIA_TEST_SEED-overridable base
// seed (tests/test_seed.hpp), so any failure reproduces exactly.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "arch/registry.hpp"
#include "obs/metrics.hpp"
#include "perf/signature.hpp"
#include "sim/thread_pool.hpp"
#include "svc/engine.hpp"
#include "svc/query.hpp"
#include "svc/snapshot.hpp"
#include "test_seed.hpp"

namespace maia::svc {
namespace {

// ---------------------------------------------------------------- fixtures ---

perf::KernelSignature test_kernel(double flops, double bytes) {
  perf::KernelSignature s;
  s.name = "snapshot-test";
  s.flops = flops;
  s.dram_bytes = bytes;
  s.vector_fraction = 0.9;
  return s;
}

/// An engine with two registered kernels (one compute-bound, one
/// memory-bound) over the paper's node — the same shape svc_test uses, so
/// two make_engine() engines share a calibration hash.
QueryEngine make_engine(EngineConfig config = {}) {
  QueryEngine engine(arch::maia_node(), config);
  engine.register_kernel(test_kernel(1e11, 1e8));
  engine.register_kernel(test_kernel(1e9, 1e10));
  return engine;
}

/// A reproducible batch mixing all three query kinds with plenty of
/// duplicates, mirroring svc_test's generator.
std::vector<Query> random_batch(std::uint32_t seed, std::size_t n) {
  std::mt19937 rng(seed);
  const arch::DeviceId devices[] = {arch::DeviceId::kHost, arch::DeviceId::kPhi0,
                                    arch::DeviceId::kPhi1};
  std::vector<Query> batch;
  batch.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    switch (rng() % 3) {
      case 0: {
        ExecQuery q;
        q.kernel = static_cast<std::uint16_t>(rng() % 3);
        q.device = devices[rng() % 3];
        q.threads = static_cast<std::uint16_t>(rng() % 300);
        batch.push_back(Query::of(q));
        break;
      }
      case 1: {
        CollectiveQuery q;
        q.op = static_cast<CollectiveOp>(rng() % 10);
        q.device = devices[rng() % 3];
        q.ranks = static_cast<std::uint16_t>(rng() % 300);
        q.message_bytes = sim::Bytes{1} << (rng() % 20);
        q.stack = (rng() % 2) ? fabric::SoftwareStack::kPreUpdate
                              : fabric::SoftwareStack::kPostUpdate;
        batch.push_back(Query::of(q));
        break;
      }
      default: {
        LatencyQuery q;
        q.device = devices[rng() % 3];
        q.working_set = sim::Bytes{1024} << (rng() % 6);
        q.iterations = static_cast<std::uint16_t>(rng() % 3);
        batch.push_back(Query::of(q));
        break;
      }
    }
  }
  return batch;
}

/// A temp-file path that is removed on scope exit.
struct TempFile {
  std::string path;
  explicit TempFile(const std::string& name)
      : path(testing::TempDir() + "maia_snapshot_test_" + name) {
    std::remove(path.c_str());
  }
  ~TempFile() { std::remove(path.c_str()); }
};

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void spill(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Synthetic records with varied bit patterns (denormal-ish doubles,
/// set flags) so round-trip comparison is a real bit-level check.
std::vector<SnapshotRecord> sample_records(std::size_t n, std::uint32_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<SnapshotRecord> records(n);
  for (SnapshotRecord& r : records) {
    r.key.hi = rng();
    r.key.lo = rng();
    r.result.value = static_cast<double>(rng()) * 0x1p-64;
    r.result.secondary = static_cast<double>(rng()) * 0x1p-32;
    r.result.flags = static_cast<std::uint32_t>(rng() % 2);
    r.result.reserved = 0;
  }
  return records;
}

std::string make_image(std::uint64_t calib,
                       const std::vector<std::uint64_t>& counts,
                       const std::vector<SnapshotRecord>& records) {
  std::ostringstream os(std::ios::binary);
  write_snapshot(os, calib, counts, records);
  return os.str();
}

/// Test-only fault injector over a serialized snapshot image: parses
/// truncated, bit-flipped, and spliced variants of the pristine bytes.
class CorruptingStream {
 public:
  explicit CorruptingStream(std::string image) : image_(std::move(image)) {}

  const std::string& image() const { return image_; }
  std::size_t size() const { return image_.size(); }

  static SnapshotReadResult parse_bytes(const std::string& bytes,
                                        std::uint64_t calib) {
    std::istringstream is(bytes, std::ios::binary);
    return read_snapshot(is, calib);
  }

  SnapshotReadResult parse(std::uint64_t calib) const {
    return parse_bytes(image_, calib);
  }
  SnapshotReadResult parse_truncated(std::size_t len, std::uint64_t calib) const {
    return parse_bytes(image_.substr(0, len), calib);
  }
  SnapshotReadResult parse_bit_flipped(std::size_t byte, int bit,
                                       std::uint64_t calib) const {
    return parse_bytes(bit_flipped(byte, bit), calib);
  }
  /// The image with extra bytes appended (a spliced / concatenated file).
  SnapshotReadResult parse_spliced(const std::string& tail,
                                   std::uint64_t calib) const {
    return parse_bytes(image_ + tail, calib);
  }

  std::string bit_flipped(std::size_t byte, int bit) const {
    std::string bytes = image_;
    bytes[byte] = static_cast<char>(bytes[byte] ^ (1u << bit));
    return bytes;
  }

 private:
  std::string image_;
};

constexpr std::uint64_t kTestCalib = 0xfeedf00d12345678ull;

bool records_equal(const std::vector<SnapshotRecord>& a,
                   const std::vector<SnapshotRecord>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(SnapshotRecord)) == 0);
}

// ------------------------------------------------------------ format layer ---

TEST(SnapshotFormatTest, Crc32MatchesTheStandardCheckValue) {
  // The canonical CRC-32 check string; pins the polynomial + reflection
  // so the format really is the documented zlib CRC.
  EXPECT_EQ(crc32("123456789", 9), 0xcbf43926u);
  // Chained calls must equal one shot.
  std::uint32_t chained = crc32("12345", 5);
  chained = crc32("6789", 4, chained);
  EXPECT_EQ(chained, 0xcbf43926u);
}

TEST(SnapshotFormatTest, RoundTripPreservesEveryRecordBit) {
  const std::vector<SnapshotRecord> records =
      sample_records(7, test::case_seed(31));
  const std::vector<std::uint64_t> counts = {3, 0, 4};
  CorruptingStream cs(make_image(kTestCalib, counts, records));

  EXPECT_EQ(cs.image().substr(0, 8), "MAIASNP1");
  EXPECT_EQ(cs.size(), kSnapshotHeaderBytes + 3 * 8 + 7 * sizeof(SnapshotRecord));

  const SnapshotReadResult r = cs.parse(kTestCalib);
  ASSERT_TRUE(r.ok()) << snapshot_error_name(r.error);
  EXPECT_EQ(r.shard_counts, counts);
  EXPECT_TRUE(records_equal(r.records, records));
}

TEST(SnapshotFormatTest, EmptySnapshotRoundTrips) {
  // One shard, zero records: what an engine that never evaluated saves.
  CorruptingStream cs(make_image(kTestCalib, {0}, {}));
  const SnapshotReadResult r = cs.parse(kTestCalib);
  ASSERT_TRUE(r.ok()) << snapshot_error_name(r.error);
  EXPECT_EQ(r.shard_counts, std::vector<std::uint64_t>{0});
  EXPECT_TRUE(r.records.empty());
}

TEST(SnapshotFormatTest, TruncationAtEveryByteIsRejected) {
  CorruptingStream cs(
      make_image(kTestCalib, {2, 3}, sample_records(5, test::case_seed(37))));
  for (std::size_t len = 0; len < cs.size(); ++len) {
    const SnapshotReadResult r = cs.parse_truncated(len, kTestCalib);
    ASSERT_FALSE(r.ok()) << "prefix of " << len << " bytes parsed";
    EXPECT_EQ(r.error, SnapshotError::kTruncated) << "prefix of " << len;
    EXPECT_TRUE(r.records.empty());
  }
}

TEST(SnapshotFormatTest, EveryHeaderBitFlipMapsToTheFieldsReason) {
  CorruptingStream cs(
      make_image(kTestCalib, {2, 3}, sample_records(5, test::case_seed(41))));
  for (std::size_t byte = 0; byte < kSnapshotHeaderBytes; ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      const SnapshotReadResult r = cs.parse_bit_flipped(byte, bit, kTestCalib);
      ASSERT_FALSE(r.ok()) << "byte " << byte << " bit " << bit << " accepted";
      EXPECT_TRUE(r.records.empty());
      if (byte < 8) {
        EXPECT_EQ(r.error, SnapshotError::kBadMagic) << "byte " << byte;
      } else if (byte < 12) {
        EXPECT_EQ(r.error, SnapshotError::kBadVersion) << "byte " << byte;
      } else if (byte < 16) {
        EXPECT_EQ(r.error, SnapshotError::kBadEndianness) << "byte " << byte;
      } else if (byte < 24) {
        EXPECT_EQ(r.error, SnapshotError::kBadCalibration) << "byte " << byte;
      } else if (byte < 28) {
        // Shard count: a flip shifts the expected payload length, so the
        // file reads short (kTruncated), fails the CRC over the resized
        // payload (kBadCrc), or trips the size caps (kBadHeader).
        EXPECT_TRUE(r.error == SnapshotError::kTruncated ||
                    r.error == SnapshotError::kBadCrc ||
                    r.error == SnapshotError::kBadHeader)
            << "byte " << byte << " bit " << bit << ": "
            << snapshot_error_name(r.error);
      } else if (byte < 32) {
        EXPECT_EQ(r.error, SnapshotError::kBadCrc) << "byte " << byte;
      } else {
        // Total record count: same length-shift outcomes as shard count.
        EXPECT_TRUE(r.error == SnapshotError::kTruncated ||
                    r.error == SnapshotError::kBadCrc ||
                    r.error == SnapshotError::kBadHeader)
            << "byte " << byte << " bit " << bit << ": "
            << snapshot_error_name(r.error);
      }
    }
  }
}

TEST(SnapshotFormatTest, EveryPayloadBitFlipFailsTheCrc) {
  CorruptingStream cs(
      make_image(kTestCalib, {2, 3}, sample_records(5, test::case_seed(43))));
  for (std::size_t byte = kSnapshotHeaderBytes; byte < cs.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      const SnapshotReadResult r = cs.parse_bit_flipped(byte, bit, kTestCalib);
      ASSERT_FALSE(r.ok()) << "byte " << byte << " bit " << bit << " accepted";
      EXPECT_EQ(r.error, SnapshotError::kBadCrc)
          << "byte " << byte << " bit " << bit;
      EXPECT_TRUE(r.records.empty());
    }
  }
}

TEST(SnapshotFormatTest, SplicedFilesAreRejected) {
  const std::vector<SnapshotRecord> records =
      sample_records(5, test::case_seed(47));
  CorruptingStream cs(make_image(kTestCalib, {2, 3}, records));

  // A valid image with anything after it is not the image that was saved.
  EXPECT_EQ(cs.parse_spliced(cs.image(), kTestCalib).error,
            SnapshotError::kBadHeader);
  EXPECT_EQ(cs.parse_spliced("x", kTestCalib).error, SnapshotError::kBadHeader);

  // This header stapled onto a different payload of the same shape fails
  // the CRC: the header vouches for bytes it never covered.
  const std::string other =
      make_image(kTestCalib, {2, 3}, sample_records(5, test::case_seed(53)));
  const std::string franken =
      cs.image().substr(0, kSnapshotHeaderBytes) + other.substr(kSnapshotHeaderBytes);
  EXPECT_EQ(CorruptingStream::parse_bytes(franken, kTestCalib).error,
            SnapshotError::kBadCrc);
}

TEST(SnapshotFormatTest, WrongCalibrationIsStaleNotCorrupt) {
  CorruptingStream cs(
      make_image(kTestCalib, {1}, sample_records(1, test::case_seed(59))));
  ASSERT_TRUE(cs.parse(kTestCalib).ok());
  // The same pristine bytes against a recalibrated model: rejected as
  // stale before the CRC is even consulted.
  EXPECT_EQ(cs.parse(kTestCalib + 1).error, SnapshotError::kBadCalibration);
}

TEST(SnapshotFormatTest, InconsistentShardCountsAreRejected) {
  // Hand-build an image whose per-shard counts do not sum to the header's
  // total, with the CRC recomputed so only the consistency check can
  // catch it.  write_snapshot() would never produce this; a hostile or
  // buggy writer could.
  const std::vector<SnapshotRecord> records =
      sample_records(4, test::case_seed(61));
  std::string bytes = make_image(kTestCalib, {2, 2}, records);
  std::string payload = bytes.substr(kSnapshotHeaderBytes);
  payload[0] = static_cast<char>(3);  // counts now {3, 2}, total still 4
  const std::uint32_t crc = crc32(payload.data(), payload.size());
  for (int i = 0; i < 4; ++i) {
    bytes[28 + i] = static_cast<char>(crc >> (8 * i));
  }
  bytes.replace(kSnapshotHeaderBytes, payload.size(), payload);
  const SnapshotReadResult r = CorruptingStream::parse_bytes(bytes, kTestCalib);
  EXPECT_EQ(r.error, SnapshotError::kBadHeader);
  EXPECT_TRUE(r.records.empty());
}

// ---------------------------------------------------------- golden fixture ---

TEST(SnapshotGoldenTest, CheckedInV1FixtureStillParses) {
  // tests/data/golden_snapshot_v1.bin was generated by an independent
  // implementation of the documented format (Python struct + zlib.crc32).
  // If this test fails, the on-disk layout changed: bump kSnapshotVersion
  // and regenerate the fixture DELIBERATELY — old snapshots in the wild
  // must be rejected as kBadVersion, not misread.
  constexpr std::uint64_t kGoldenCalib = 0x600dcafef00d5eedull;
  const std::string path =
      std::string(MAIA_TEST_DATA_DIR) + "/golden_snapshot_v1.bin";
  const std::string bytes = slurp(path);
  ASSERT_EQ(bytes.size(), 176u) << "fixture missing or resized: " << path;
  EXPECT_EQ(bytes.substr(0, 8), "MAIASNP1");

  const SnapshotReadResult r = CorruptingStream::parse_bytes(bytes, kGoldenCalib);
  ASSERT_TRUE(r.ok()) << snapshot_error_name(r.error);
  EXPECT_EQ(r.shard_counts, (std::vector<std::uint64_t>{2, 1}));
  ASSERT_EQ(r.records.size(), 3u);

  EXPECT_EQ(r.records[0].key.hi, 0x1111111111111111ull);
  EXPECT_EQ(r.records[0].key.lo, 0x2222222222222222ull);
  EXPECT_EQ(r.records[0].result.value, 1.5);
  EXPECT_EQ(r.records[0].result.secondary, 2.25);
  EXPECT_EQ(r.records[0].result.flags, 0u);

  EXPECT_EQ(r.records[1].key.hi, 0x0123456789abcdefull);
  EXPECT_EQ(r.records[1].key.lo, 0ull);
  EXPECT_EQ(r.records[1].result.value, -0.125);
  EXPECT_EQ(r.records[1].result.secondary, 1e-9);
  EXPECT_EQ(r.records[1].result.flags, 1u);

  EXPECT_EQ(r.records[2].key.hi, 0xfedcba9876543210ull);
  EXPECT_EQ(r.records[2].key.lo, 0xdeadbeefcafebabeull);
  EXPECT_EQ(r.records[2].result.value, 3.141592653589793);
  EXPECT_EQ(r.records[2].result.secondary, 0.0);
  EXPECT_EQ(r.records[2].result.flags, 0u);

  // And a stale reader still rejects it on calibration alone.
  EXPECT_EQ(CorruptingStream::parse_bytes(bytes, kGoldenCalib ^ 1).error,
            SnapshotError::kBadCalibration);
}

// ------------------------------------------------------------ engine layer ---

TEST(SnapshotEngineTest, WarmStartReplaysByteIdenticalWithFullHits) {
  QueryEngine engine = make_engine();
  const std::uint32_t seed = test::case_seed(101);
  const std::vector<Query> batch = random_batch(seed, 4000);
  BatchResults ref;
  engine.evaluate_serial(batch, ref);

  sim::ThreadPool pool(4);
  BatchResults first;
  engine.evaluate(batch, first, &pool);
  const EngineStats after_first = engine.stats();
  BatchResults second;
  engine.evaluate(batch, second, &pool);
  const EngineStats after_second = engine.stats();
  const double pre_save_warm_rate =
      static_cast<double>(after_second.cache_hits - after_first.cache_hits) /
      static_cast<double>(batch.size());

  TempFile file("roundtrip.snap");
  const SnapshotSaveResult saved = engine.save_snapshot(file.path);
  ASSERT_TRUE(saved.ok()) << snapshot_error_name(saved.error);
  // Every distinct key (= first-pass miss) is resident and persisted.
  EXPECT_EQ(saved.records, after_first.cache_misses) << "seed " << seed;

  QueryEngine fresh = make_engine();
  EXPECT_EQ(fresh.calibration_hash(), engine.calibration_hash());
  const SnapshotLoadResult loaded = fresh.load_snapshot(file.path);
  ASSERT_TRUE(loaded.ok()) << snapshot_error_name(loaded.error);
  EXPECT_EQ(loaded.records_in_file, saved.records);
  EXPECT_EQ(loaded.records_loaded, saved.records);

  BatchResults replay;
  fresh.evaluate(batch, replay, &pool);
  EXPECT_TRUE(replay.bitwise_equal(ref)) << "seed " << seed;
  const EngineStats warm = fresh.stats();
  // The snapshot carried every key this batch needs: no misses at all,
  // and at least the pre-save warm pass's hit rate.
  EXPECT_EQ(warm.cache_misses, 0u) << "seed " << seed;
  EXPECT_GE(warm.hit_rate(), pre_save_warm_rate) << "seed " << seed;
}

TEST(SnapshotEngineTest, LoadingTwiceInsertsNothingNew) {
  QueryEngine engine = make_engine();
  const std::vector<Query> batch = random_batch(test::case_seed(103), 1000);
  BatchResults out;
  engine.evaluate(batch, out);
  TempFile file("idempotent.snap");
  ASSERT_TRUE(engine.save_snapshot(file.path).ok());

  QueryEngine fresh = make_engine();
  const SnapshotLoadResult once = fresh.load_snapshot(file.path);
  ASSERT_TRUE(once.ok());
  EXPECT_GT(once.records_loaded, 0u);
  const SnapshotLoadResult twice = fresh.load_snapshot(file.path);
  ASSERT_TRUE(twice.ok());
  EXPECT_EQ(twice.records_in_file, once.records_in_file);
  EXPECT_EQ(twice.records_loaded, 0u);  // insert-if-absent: all resident
}

TEST(SnapshotEngineTest, SnapshotWarmsAnEngineWithDifferentShardCount) {
  EngineConfig wide;
  wide.shards = 8;
  QueryEngine engine = make_engine(wide);
  const std::uint32_t seed = test::case_seed(107);
  const std::vector<Query> batch = random_batch(seed, 2000);
  BatchResults ref;
  engine.evaluate_serial(batch, ref);
  BatchResults out;
  engine.evaluate(batch, out);
  TempFile file("reshard.snap");
  const SnapshotSaveResult saved = engine.save_snapshot(file.path);
  ASSERT_TRUE(saved.ok());

  EngineConfig narrow;
  narrow.shards = 2;
  QueryEngine fresh = make_engine(narrow);
  ASSERT_EQ(fresh.shard_count(), 2);
  const SnapshotLoadResult loaded = fresh.load_snapshot(file.path);
  ASSERT_TRUE(loaded.ok()) << snapshot_error_name(loaded.error);
  EXPECT_EQ(loaded.records_loaded, saved.records);  // records re-shard by hash

  BatchResults replay;
  fresh.evaluate(batch, replay);
  EXPECT_TRUE(replay.bitwise_equal(ref)) << "seed " << seed;
  EXPECT_EQ(fresh.stats().cache_misses, 0u) << "seed " << seed;
}

TEST(SnapshotEngineTest, EmptyEngineRoundTripsZeroRecords) {
  QueryEngine engine = make_engine();
  TempFile file("empty.snap");
  const SnapshotSaveResult saved = engine.save_snapshot(file.path);
  ASSERT_TRUE(saved.ok());
  EXPECT_EQ(saved.records, 0u);
  QueryEngine fresh = make_engine();
  const SnapshotLoadResult loaded = fresh.load_snapshot(file.path);
  ASSERT_TRUE(loaded.ok()) << snapshot_error_name(loaded.error);
  EXPECT_EQ(loaded.records_in_file, 0u);
  EXPECT_EQ(loaded.records_loaded, 0u);
}

TEST(SnapshotEngineTest, MissingFileIsIoError) {
  QueryEngine engine = make_engine();
  const SnapshotLoadResult loaded =
      engine.load_snapshot(testing::TempDir() + "maia_snapshot_test_nonexistent");
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.error, SnapshotError::kIoError);
}

TEST(SnapshotEngineTest, UnwritablePathIsIoError) {
  QueryEngine engine = make_engine();
  // A directory is not a writable file.
  const SnapshotSaveResult saved = engine.save_snapshot(testing::TempDir());
  EXPECT_FALSE(saved.ok());
  EXPECT_EQ(saved.error, SnapshotError::kIoError);
}

TEST(SnapshotEngineTest, RecalibratedEngineRejectsTheSnapshotAsStale) {
  QueryEngine engine = make_engine();
  const std::vector<Query> batch = random_batch(test::case_seed(109), 500);
  BatchResults out;
  engine.evaluate(batch, out);
  TempFile file("stale.snap");
  ASSERT_TRUE(engine.save_snapshot(file.path).ok());

  // A third registered kernel is a different calibration: cached exec
  // answers keyed by kernel id are not comparable across registries.
  QueryEngine recalibrated = make_engine();
  recalibrated.register_kernel(test_kernel(5e10, 5e9));
  ASSERT_NE(recalibrated.calibration_hash(), engine.calibration_hash());
  const SnapshotLoadResult loaded = recalibrated.load_snapshot(file.path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.error, SnapshotError::kBadCalibration);
  EXPECT_EQ(loaded.records_loaded, 0u);
}

TEST(SnapshotEngineTest, EveryCorruptionClassFallsBackColdAndIsCounted) {
  QueryEngine engine = make_engine();
  const std::uint32_t seed = test::case_seed(113);
  const std::vector<Query> batch = random_batch(seed, 1500);
  BatchResults ref;
  engine.evaluate_serial(batch, ref);
  BatchResults out;
  engine.evaluate(batch, out);
  TempFile file("corrupt.snap");
  ASSERT_TRUE(engine.save_snapshot(file.path).ok());
  const std::string pristine = slurp(file.path);
  ASSERT_GT(pristine.size(), kSnapshotHeaderBytes);
  CorruptingStream cs(pristine);

  struct Case {
    const char* name;
    std::string bytes;
    SnapshotError expected;
  };
  const Case cases[] = {
      {"bad_magic", cs.bit_flipped(0, 3), SnapshotError::kBadMagic},
      {"bad_version", cs.bit_flipped(9, 0), SnapshotError::kBadVersion},
      {"bad_endianness", cs.bit_flipped(13, 5), SnapshotError::kBadEndianness},
      {"bad_calibration", cs.bit_flipped(20, 7), SnapshotError::kBadCalibration},
      {"bad_crc", cs.bit_flipped(pristine.size() / 2, 4), SnapshotError::kBadCrc},
      {"truncated", pristine.substr(0, pristine.size() - 1),
       SnapshotError::kTruncated},
      {"bad_header", pristine + pristine, SnapshotError::kBadHeader},
  };

  const auto& registry = obs::MetricsRegistry::global();
  for (const Case& c : cases) {
    SCOPED_TRACE(c.name);
    spill(file.path, c.bytes);
    const obs::MetricsSnapshot before = registry.snapshot();
    QueryEngine fresh = make_engine();
    const SnapshotLoadResult loaded = fresh.load_snapshot(file.path);
    EXPECT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.error, c.expected)
        << "got " << snapshot_error_name(loaded.error);
    EXPECT_EQ(loaded.records_loaded, 0u);

    // The rejection is visible in the metrics registry, aggregate and
    // per-reason.
    const obs::MetricsSnapshot after = registry.snapshot();
    EXPECT_EQ(after.counter("svc.snapshot.rejected"),
              before.counter("svc.snapshot.rejected") + 1);
    const std::string reason_metric =
        std::string("svc.snapshot.rejected.") + snapshot_error_name(c.expected);
    EXPECT_EQ(after.counter(reason_metric), before.counter(reason_metric) + 1);

    // Cold but correct: the engine computes the batch from scratch and
    // still matches the serial reference bit for bit.
    BatchResults cold;
    fresh.evaluate(batch, cold);
    EXPECT_TRUE(cold.bitwise_equal(ref)) << "seed " << seed;
    EXPECT_GT(fresh.stats().cache_misses, 0u);  // genuinely cold
  }
}

// ------------------------------------------------------------- concurrency ---
// These run under -fsanitize=thread in CI (see .github/workflows/ci.yml).

TEST(SnapshotConcurrencyTest, SaveRacesConcurrentEvaluateBatches) {
  QueryEngine engine = make_engine();
  const std::uint32_t seed = test::case_seed(301);
  const std::vector<Query> batch = random_batch(seed, 2000);
  BatchResults ref;
  engine.evaluate_serial(batch, ref);

  sim::ThreadPool pool(4);
  TempFile files[3] = {TempFile("race0.snap"), TempFile("race1.snap"),
                       TempFile("race2.snap")};
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&] {
      for (int round = 0; round < 3; ++round) {
        BatchResults out;
        engine.evaluate(batch, out, &pool);
        EXPECT_TRUE(out.bitwise_equal(ref)) << "seed " << seed;
      }
    });
  }
  threads.emplace_back([&] {
    // Snapshots taken mid-flight: each drains the shards under their
    // locks while the evaluators keep inserting.
    for (const TempFile& f : files) {
      const SnapshotSaveResult saved = engine.save_snapshot(f.path);
      EXPECT_TRUE(saved.ok()) << snapshot_error_name(saved.error);
    }
  });
  for (std::thread& t : threads) t.join();

  // A post-race save must capture the fully warm cache; loading it warms
  // a fresh engine to byte-identical replays.
  const SnapshotSaveResult final_save = engine.save_snapshot(files[0].path);
  ASSERT_TRUE(final_save.ok());
  QueryEngine fresh = make_engine();
  ASSERT_TRUE(fresh.load_snapshot(files[0].path).ok());
  BatchResults replay;
  fresh.evaluate(batch, replay);
  EXPECT_TRUE(replay.bitwise_equal(ref)) << "seed " << seed;

  // The mid-race snapshots must each be internally valid too — whatever
  // subset they caught, it loads cleanly.
  for (const TempFile& f : files) {
    QueryEngine probe = make_engine();
    const SnapshotLoadResult loaded = probe.load_snapshot(f.path);
    EXPECT_TRUE(loaded.ok()) << snapshot_error_name(loaded.error);
  }
}

TEST(SnapshotConcurrencyTest, TwoEnginesLoadTheSameFileSimultaneously) {
  QueryEngine engine = make_engine();
  const std::uint32_t seed = test::case_seed(307);
  const std::vector<Query> batch = random_batch(seed, 1500);
  BatchResults ref;
  engine.evaluate_serial(batch, ref);
  BatchResults out;
  engine.evaluate(batch, out);
  TempFile file("shared.snap");
  ASSERT_TRUE(engine.save_snapshot(file.path).ok());

  auto worker = [&] {
    QueryEngine e = make_engine();
    const SnapshotLoadResult loaded = e.load_snapshot(file.path);
    EXPECT_TRUE(loaded.ok()) << snapshot_error_name(loaded.error);
    BatchResults replay;
    e.evaluate(batch, replay);
    EXPECT_TRUE(replay.bitwise_equal(ref)) << "seed " << seed;
  };
  std::thread a(worker);
  std::thread b(worker);
  a.join();
  b.join();
}

TEST(SnapshotConcurrencyTest, LoadRacesEvaluateOnTheSameEngine) {
  QueryEngine warm = make_engine();
  const std::uint32_t seed = test::case_seed(311);
  const std::vector<Query> batch = random_batch(seed, 1500);
  BatchResults ref;
  warm.evaluate_serial(batch, ref);
  BatchResults out;
  warm.evaluate(batch, out);
  TempFile file("loadrace.snap");
  ASSERT_TRUE(warm.save_snapshot(file.path).ok());

  // Loading inserts the exact bits a fresh compute would produce, so the
  // racing evaluate stays byte-identical no matter who wins each shard.
  QueryEngine engine = make_engine();
  sim::ThreadPool pool(4);
  std::thread loader([&] {
    const SnapshotLoadResult loaded = engine.load_snapshot(file.path);
    EXPECT_TRUE(loaded.ok()) << snapshot_error_name(loaded.error);
  });
  BatchResults racing;
  engine.evaluate(batch, racing, &pool);
  loader.join();
  EXPECT_TRUE(racing.bitwise_equal(ref)) << "seed " << seed;
  BatchResults after;
  engine.evaluate(batch, after, &pool);
  EXPECT_TRUE(after.bitwise_equal(ref)) << "seed " << seed;
}

}  // namespace
}  // namespace maia::svc
